(** Directory-backed blob cache (the [--cache-dir] of [mompc]).

    One file per key under the cache directory, written atomically
    (temp file + rename), so concurrent writers of the same key — even
    across processes — leave a complete entry.  Keys must be filesystem-safe;
    use {!Cache.key} digests. *)

type t

val create : dir:string -> t
(** Creates [dir] (and missing parents) if needed. *)

val dir : t -> string

val find : t -> key:string -> string option

val store : t -> key:string -> data:string -> unit

val find_or_compute : t -> key:string -> (unit -> string) -> string

val hits : t -> int

val misses : t -> int

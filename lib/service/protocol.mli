(** Wire protocol v2 of the persistent compile service ([mompd]).

    Transport: newline-delimited JSON over a Unix-domain stream socket.
    Each request is one minified JSON object terminated by ['\n']; the
    server answers each request with exactly one response line, in request
    order per connection.  A connection carries any number of requests.

    v2 (api_version 2): the compile config gained an optional ["pipeline"]
    member — a pipeline spec string ([Pipeline.of_string]) superseding the
    legacy ["optimize"]/["disable"] pair, which remain accepted on their
    own but may not be combined with it.

    Every message carries [{"v": 2, ...}]; the server rejects other
    versions with a structured [Bad_request].  Requests carry a
    client-chosen ["id"] echoed verbatim in the response, so pipelined
    clients can match answers to questions.

    Operations ([op]):
    - ["compile"] — compile a MiniOMP source under a {!Ompgpu_api.Config}
    - ["run"] — sugar for compile with the simulator forced on
    - ["stats"] — the daemon's live counters (schema 2)
    - ["health"] — liveness/readiness: uptime, in-flight, breaker state,
      restart and journal-replay counts (schema 2)
    - ["fleet"] — aggregate per-shard health/stats; answered by the
      {!Router} front-end (a single-shard daemon rejects it)
    - ["shutdown"] — acknowledge, then drain and exit

    The full field-by-field specification lives in docs/API.md; the
    fixtures in test/test_service.ml pin the encoding. *)

val version : int
(** 2.  Breaking wire changes bump this; the server answers exactly the
    versions it supports and rejects the rest ([Bad_request], exit 42). *)

val max_frame_bytes : int
(** Upper bound on one request line (8 MiB).  A longer line is a hostile
    or broken peer; {!read_message} reports it as [`Overflow] without
    buffering the remainder, and the server severs the connection after
    answering. *)

type request =
  | Compile of {
      id : string;
      file : string;  (** diagnostic label and injector-derivation tag *)
      source : string;
      config : Ompgpu_api.Config.t;
      tenant : string option;
          (** admission-quota identity under the fleet router; the wire
              member is omitted (not [null]) when [None], so pre-fleet
              requests encode byte-identically *)
    }
  | Stats of { id : string }
  | Health of { id : string }
  | Fleet of { id : string }
  | Shutdown of { id : string }

type response =
  | Compiled of {
      id : string;
      op : string;  (** the request's op, echoed: ["compile"] or ["run"] *)
      result : Ompgpu_api.compiled;
    }
      (** Any settled compile — success, structured failure, or a shed
          request ([Overload], exit 40): the result's diagnostics are the
          exact bytes a one-shot [mompc] would print. *)
  | Stats_reply of { id : string; stats : Observe.Json.t }
  | Health_reply of { id : string; health : Observe.Json.t }
      (** Schema-2 health document; see {!Server.health_json} for the
          members. *)
  | Fleet_reply of { id : string; fleet : Observe.Json.t }
      (** Schema-2 fleet document: the ring layout plus one entry per
          shard (state, probe counters, per-shard stats).  Only the
          {!Router} produces it. *)
  | Shutdown_ack of { id : string }
  | Rejected of { id : string option; error : Fault.Ompgpu_error.t }
      (** A request the protocol layer could not accept: unparseable
          JSON, wrong version, unknown op, missing field. *)

val config_to_json : Ompgpu_api.Config.t -> Observe.Json.t
val config_of_json : Observe.Json.t -> (Ompgpu_api.Config.t, string) result
(** Omitted members take {!Ompgpu_api.Config.default}s, so a minimal
    request is [{"v":2,"id":"x","op":"compile","source":"..."}]. *)

val request_to_json : request -> Observe.Json.t
val request_of_json :
  Observe.Json.t -> (request, Fault.Ompgpu_error.t) result
(** Decoding failures are [Bad_request] taxonomy values whose message
    names the offending field. *)

val response_to_json : response -> Observe.Json.t
val response_of_json :
  Observe.Json.t -> (response, string) result

val read_message :
  in_channel ->
  [ `Eof
  | `Msg of (Observe.Json.t, Fault.Ompgpu_error.t) result
  | `Overflow of Fault.Ompgpu_error.t ]
(** Read one newline-terminated JSON message.  Never raises on hostile
    input: end of stream is [`Eof], a line over {!max_frame_bytes} is
    [`Overflow] (the remainder of the line is left unread — close the
    connection), and a torn or garbage line (including EOF mid-frame) is
    [`Msg (Error bad_request)]. *)

val write_message : out_channel -> Observe.Json.t -> unit
(** Write one minified line and flush. *)

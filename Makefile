# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench experiments examples clean

all: build

build:
	dune build @all

test:
	dune runtest

# regenerate every table and figure of the paper's evaluation
experiments:
	dune exec bin/run_experiments.exe

bench:
	dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/deglobalization_demo.exe
	dune exec examples/spmdization_demo.exe
	dune exec examples/remarks_demo.exe
	dune exec examples/custom_analysis.exe
	dune exec examples/oom_demo.exe

clean:
	dune clean

(* XSBench: the continuous-energy macroscopic neutron cross-section lookup
   of OpenMC, memory bound.  The kernel is the combined (SPMD) directive;
   the optimization opportunities are the three globalized locals that
   HeapToStack recovers: the RNG seed (address taken), the macroscopic
   cross-section vector, and the microscopic vector inside the lookup
   helper (Fig. 9: 3 / 0). *)

let params = function
  | App.Tiny -> (128, 64, 4, 4, 8)  (* grid, lookups, nuclides, teams, threads *)
  | App.Bench -> (1024, 768, 8, 16, 32)

let source ~scale =
  let grid, lookups, nuclides, teams, threads = params scale in
  Printf.sprintf
    {|
double egrid[%d];
double xs_data[%d];
double results[%d];

static int grid_search(double e) {
  int lo = 0;
  int hi = %d;
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (egrid[mid] < e) { lo = mid + 1; } else { hi = mid; }
  }
  return lo;
}

static void calculate_micro_xs(double e, int nuc, double* micro_xs) {
  int idx = grid_search(e);
  double f = e * %d.0 - (double)idx;
  for (int c = 0; c < 5; c++) {
    double v = xs_data[idx * 5 + c];
    micro_xs[c] = v * (1.0 - f) + v * f * 0.5 + (double)nuc * 0.001;
  }
}

static void calculate_macro_xs(double e, double* macro_xs) {
  double micro_xs[5];
  for (int c = 0; c < 5; c++) { macro_xs[c] = 0.0; }
  for (int n = 0; n < %d; n++) {
    calculate_micro_xs(e, n, micro_xs);
    for (int c = 0; c < 5; c++) {
      macro_xs[c] += micro_xs[c] * 0.125;
    }
  }
}

static double lcg(long* seed) {
  seed[0] = (seed[0] * 1103515245 + 12345) %% 2147483648;
  return (double)(seed[0]) / 2147483648.0;
}

int main() {
  for (int i = 0; i < %d; i++) { egrid[i] = (double)i / %d.0; }
  for (int j = 0; j < %d; j++) { xs_data[j] = (double)(j %% 97) * 0.01 + 0.1; }
  int n_lookups = %d;
  #pragma omp target teams distribute parallel for num_teams(%d) thread_limit(%d)
  for (int i = 0; i < n_lookups; i++) {
    long seed = i * 1337 + 42;
    double e = lcg(&seed);
    double macro_xs[5];
    calculate_macro_xs(e, macro_xs);
    double m = 0.0;
    for (int c = 0; c < 5; c++) {
      if (macro_xs[c] > m) { m = macro_xs[c]; }
    }
    results[i] = m;
  }
  double checksum = 0.0;
  for (int i = 0; i < n_lookups; i++) { checksum += results[i]; }
  trace_f64(checksum);
  return 0;
}
|}
    grid (grid * 5) lookups (grid - 1) grid nuclides grid grid (grid * 5) lookups teams
    threads

let app : App.t =
  {
    App.name = "xsbench";
    description = "XSBench: event-based macroscopic cross-section lookup (memory bound)";
    omp_source = (fun scale -> source ~scale);
    (* the kernel is already written in kernel style: the CUDA build is the
       same source compiled without OpenMP runtime overheads *)
    cuda_source = (fun scale -> source ~scale);
    expected_h2s = 3;
    expected_h2shared = 0;
    expected_spmdized = false;  (* already SPMD *)
  }

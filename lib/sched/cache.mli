(** Content-addressed, domain-safe result cache with optional LRU bounds.

    Keys are digests of job *content* — for pipeline jobs, the printed IR
    module text plus the pass-option fingerprint (plus machine/scale salts;
    see docs/SCHEDULER.md for the exact key definition) — so identical
    inputs hit regardless of which file, app or batch slot produced them.
    Values are whatever the job computes (pipeline report, optimized IR
    text, a full measurement).

    All operations are thread-safe.  Two domains that miss the same key
    concurrently both compute; the first insertion wins and both count as
    misses (values are equal by the determinism contract, so which one is
    kept is unobservable).

    Governance: with [?max_entries] and/or [?max_bytes] the cache is a
    strict LRU — request-path reads refresh recency, inserts evict from
    the least-recently-used end until both caps hold, and evictions are
    counted.  Without caps nothing is ever evicted ([create ()] behaves
    exactly as before governance). *)

type 'a t

val create :
  ?max_entries:int -> ?max_bytes:int -> ?size_of:('a -> int) -> unit -> 'a t
(** [max_entries] caps the entry count; [max_bytes] caps the sum of
    [size_of v] over cached values (approximate payload bytes — the
    default [size_of] is [fun _ -> 0], so a byte cap without a [size_of]
    never evicts).  A single value larger than [max_bytes] is computed
    and returned but not retained. *)

val key : string list -> string
(** Digest (hex) of the concatenated parts, separator-framed so that part
    boundaries cannot collide. *)

val find_or_compute : 'a t -> key:string -> (unit -> 'a) -> 'a
(** Return the cached value for [key] (refreshing its recency), or run
    the thunk (outside the cache lock), memoize and return its result.
    A raising thunk caches nothing. *)

val replace : 'a t -> key:string -> 'a -> unit
(** Atomically overwrite (or insert) [key]'s entry.  Concurrent readers
    see the old or the new value, never a torn one; hit/miss counters are
    untouched.  Used by the daemon's tier-upgrade path to promote a
    fast-tier entry to the full-pipeline result — when the fast entry was
    evicted mid-upgrade the promotion re-inserts it, so the entry still
    converges to the full-pipeline bytes. *)

val peek : 'a t -> key:string -> 'a option
(** Counter- and recency-neutral lookup: like a read under
    {!find_or_compute}'s lock but without touching the hit/miss
    accounting or the LRU order.  For background maintenance (the
    upgrade worker), not the request path. *)

val hits : 'a t -> int

val misses : 'a t -> int

val hit_rate : 'a t -> float
(** [hits / (hits + misses)]; [0.] before any lookup. *)

val length : 'a t -> int

val bytes : 'a t -> int
(** Current sum of [size_of v] over cached values (0 without a
    [size_of]). *)

val evictions : 'a t -> int
(** Entries evicted by the caps since [create]. *)

val max_entries : 'a t -> int option
val max_bytes : 'a t -> int option

val reset_counters : 'a t -> unit
(** Zero the hit/miss counters, keeping the cached entries — used to
    measure the hit rate of one warm batch in isolation. *)

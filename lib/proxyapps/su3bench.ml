(* SU3Bench: the SU(3) matrix-matrix multiply micro benchmark from
   MILC/Lattice QCD, "version 0" — the native CPU-style OpenMP kernel: a
   teams-distribute loop over lattice sites whose body launches two very
   lightweight parallel regions.  Generic-mode launch overhead dominates,
   which is why SPMDzation delivers the paper's ~10x (Fig. 11c).

   The CUDA variant flattens sites x elements into combined kernels. *)

let params = function
  | App.Tiny -> (32, 2, 8)  (* sites, teams, threads *)
  | App.Bench -> (384, 8, 32)

let preamble sites =
  Printf.sprintf
    {|
double A[%d];
double B[%d];
double C[%d];
double NORMS[%d];

static double dot3(double* x, double* y) {
  return x[0] * y[0] + x[1] * y[1] + x[2] * y[2];
}

static void site_mult(int site, int k) {
  double arow[3];
  double bcol[3];
  int r = k / 3;
  int c = k %% 3;
  for (int j = 0; j < 3; j++) {
    arow[j] = A[site * 9 + r * 3 + j];
    bcol[j] = B[site * 9 + j * 3 + c];
  }
  C[site * 9 + k] = dot3(arow, bcol);
}

static void site_norm(int site, int k) {
  double tmp[3];
  double acc[1];
  acc[0] = 0.0;
  for (int j = 0; j < 3; j++) {
    tmp[j] = C[site * 9 + (k %% 3) * 3 + j];
    acc[0] += tmp[j] * tmp[j];
  }
  NORMS[site * 9 + k] = sqrt(acc[0]);
}
|}
    (sites * 9) (sites * 9) (sites * 9) (sites * 9)

let host_init sites =
  Printf.sprintf
    {|
  for (int i = 0; i < %d; i++) {
    A[i] = (double)(i %% 13) * 0.1 + 0.5;
    B[i] = (double)(i %% 7) * 0.2 + 0.25;
  }
|}
    (sites * 9)

let host_checksum sites =
  Printf.sprintf
    {|
  double checksum = 0.0;
  for (int i = 0; i < %d; i++) { checksum += C[i] + NORMS[i]; }
  trace_f64(checksum);
  return 0;
|}
    (sites * 9)

let omp_source scale =
  let sites, teams, threads = params scale in
  Printf.sprintf
    {|%s
int main() {
%s
  int n_sites = %d;
  #pragma omp target teams distribute num_teams(%d) thread_limit(%d)
  for (int site = 0; site < n_sites; site++) {
    #pragma omp parallel for
    for (int k = 0; k < 9; k++) {
      site_mult(site, k);
    }
    #pragma omp parallel for
    for (int k2 = 0; k2 < 9; k2++) {
      site_norm(site, k2);
    }
  }
%s
}
|}
    (preamble sites) (host_init sites) sites teams threads (host_checksum sites)

let cuda_source scale =
  let sites, teams, threads = params scale in
  Printf.sprintf
    {|%s
int main() {
%s
  int n_elems = %d;
  #pragma omp target teams distribute parallel for num_teams(%d) thread_limit(%d)
  for (int idx = 0; idx < n_elems; idx++) {
    site_mult(idx / 9, idx %% 9);
  }
  #pragma omp target teams distribute parallel for num_teams(%d) thread_limit(%d)
  for (int idx2 = 0; idx2 < n_elems; idx2++) {
    site_norm(idx2 / 9, idx2 %% 9);
  }
%s
}
|}
    (preamble sites) (host_init sites) (sites * 9) teams threads teams threads
    (host_checksum sites)

let app : App.t =
  {
    App.name = "su3bench";
    description = "SU3Bench: SU(3) matrix-matrix multiply, CPU-style kernel (version 0)";
    omp_source;
    cuda_source;
    expected_h2s = 4;
    expected_h2shared = 3;  (* the captured site variable and two args buffers *)
    expected_spmdized = true;
  }

(* Ledger rendering and diffing.  Everything here must be deterministic:
   the ledger is a committed golden file, so iteration order is pinned
   (corpus order for divergences, name order for classes) and no
   wall-clock or host fact may appear. *)

type totals = { cells : int; pass : int; known : int; fail : int }

let totals results =
  List.fold_left
    (fun acc (r : Matrix.program_result) ->
      List.fold_left
        (fun acc (cr : Matrix.cell_result) ->
          match cr.Matrix.verdict with
          | Matrix.Pass -> { acc with cells = acc.cells + 1; pass = acc.pass + 1 }
          | Matrix.Known _ -> { acc with cells = acc.cells + 1; known = acc.known + 1 }
          | Matrix.Fail _ -> { acc with cells = acc.cells + 1; fail = acc.fail + 1 })
        acc r.Matrix.cells)
    { cells = 0; pass = 0; known = 0; fail = 0 }
    results

let class_counts results =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (r : Matrix.program_result) ->
      List.iter
        (fun (cr : Matrix.cell_result) ->
          match cr.Matrix.verdict with
          | Matrix.Known { cls; _ } ->
            Hashtbl.replace tbl cls (1 + Option.value ~default:0 (Hashtbl.find_opt tbl cls))
          | _ -> ())
        r.Matrix.cells)
    results;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let render ~root results =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let t = totals results in
  line "# ompgpu conformance ledger (docs/CONFORMANCE.md)";
  line "# regenerate: dune exec tools/conformance.exe -- --seed %Ld --n %d --ledger -"
    root (List.length results);
  line "schema %d" Observe.Json.schema_version;
  line "seed %Ld" root;
  line "programs %d" (List.length results);
  line "matrix schemes=%s modes=%s pipelines=%s"
    (String.concat "," (List.map Frontend.Codegen.scheme_name Matrix.schemes))
    (String.concat "," (List.map Gen.mode_name Gen.modes))
    (String.concat "," (List.map Matrix.pipeline_name Matrix.pipelines));
  line "cells %d pass %d known %d fail %d" t.cells t.pass t.known t.fail;
  List.iter (fun (cls, n) -> line "class %s %d" cls n) (class_counts results);
  List.iter
    (fun (r : Matrix.program_result) ->
      List.iter
        (fun (cr : Matrix.cell_result) ->
          match cr.Matrix.verdict with
          | Matrix.Pass -> ()
          | Matrix.Known { cls; obs; ref_ } ->
            line "divergence prog=%d cell=%s class=%s obs=%s ref=%s" r.Matrix.index
              (Matrix.cell_name cr.Matrix.cell) cls obs ref_
          | Matrix.Fail { obs; ref_; _ } ->
            line "FAIL prog=%d cell=%s obs=%s ref=%s" r.Matrix.index
              (Matrix.cell_name cr.Matrix.cell) obs ref_)
        r.Matrix.cells)
    results;
  Buffer.contents buf

(* Comment lines are presentation, not contract: regeneration hints may
   change without invalidating a committed ledger. *)
let significant_lines s =
  String.split_on_char '\n' s
  |> List.filter (fun l ->
         let l = String.trim l in
         String.length l > 0 && l.[0] <> '#')

let diff ~expected ~actual =
  let e = significant_lines expected and a = significant_lines actual in
  let rec walk i = function
    | [], [] -> Ok ()
    | el :: erest, al :: arest ->
      if String.equal el al then walk (i + 1) (erest, arest)
      else
        Error
          (Printf.sprintf "ledger line %d differs\n  expected: %s\n  actual:   %s" i
             el al)
    | el :: _, [] ->
      Error (Printf.sprintf "ledger truncated at line %d\n  expected: %s" i el)
    | [], al :: _ ->
      Error (Printf.sprintf "ledger has extra line %d\n  actual:   %s" i al)
  in
  walk 1 (e, a)

(* The differential matrix (see the .mli).  All compilation goes through
   Ompgpu_api.compile_buffered — or a caller-supplied backend with the
   same signature — so the in-process runner, the daemon traffic
   generator, and mompc one-shots are byte-identical by construction. *)

module Api = Ompgpu_api

type pipeline = O0 | Full

let pipelines = [ O0; Full ]
let pipeline_name = function O0 -> "O0" | Full -> "full"

let schemes =
  [ Frontend.Codegen.Simplified; Frontend.Codegen.Legacy; Frontend.Codegen.Cuda ]

type cell = {
  scheme : Frontend.Codegen.scheme;
  mode : Gen.mode;
  pipeline : pipeline;
}

let cells =
  List.concat_map
    (fun mode ->
      List.concat_map
        (fun scheme ->
          List.map (fun pipeline -> { scheme; mode; pipeline }) pipelines)
        schemes)
    Gen.modes

let cell_name c =
  Printf.sprintf "%s/%s/%s"
    (Frontend.Codegen.scheme_name c.scheme)
    (Gen.mode_name c.mode) (pipeline_name c.pipeline)

let cell_of_name s =
  List.find_opt (fun c -> String.equal (cell_name c) s) cells

let config_of_cell ?pipeline c =
  let base =
    {
      Api.Config.default with
      Api.Config.scheme = c.scheme;
      options =
        (match c.pipeline with
        | O0 -> None
        | Full -> Some Api.Options.default_options);
      run_sim = true;
      emit_ir = false;
    }
  in
  (* an explicit pipeline override replaces the Full cells' pass
     pipeline (api_version 2): `conformance --pipeline fast` replays the
     matrix with the fast tier standing in for the full one.  O0 cells
     are untouched — they are the unoptimized reference column. *)
  match (c.pipeline, pipeline) with
  | Full, Some p -> { base with Api.Config.options = None; pipeline = Some p }
  | _ -> base

(* The documented unsoundness classes (docs/CONFORMANCE.md).  A class is
   a *license* for a cell to diverge, not a prediction that it will: an
   escape whose published value happens to match the private copies
   passes, and that is fine. *)
let classify c prog =
  match (c.scheme, c.mode) with
  | Frontend.Codegen.Legacy, Gen.Spmd when Gen.has_escape prog ->
    Some "legacy-spmd-escape"
  | Frontend.Codegen.Cuda, Gen.Spmd when Gen.has_escape prog -> Some "cuda-escape"
  | Frontend.Codegen.Cuda, _ when Gen.has_nested prog ->
    (* raw CUDA semantics cannot serialize nested OpenMP worksharing:
       the inner loop splits over team threads (wrong trip counts in
       generic mode) and its join barrier deadlocks when the outer
       distribution is uneven (SPMD mode) *)
    Some "cuda-nested-worksharing"
  | _ -> None

type verdict =
  | Pass
  | Known of { cls : string; obs : string; ref_ : string }
  | Fail of { obs : string; ref_ : string; detail : string }

type cell_result = { cell : cell; verdict : verdict }
type program_result = { index : int; prog : Gen.prog; cells : cell_result list }

(* ------------------------------------------------------------------ *)
(* Observation                                                         *)
(* ------------------------------------------------------------------ *)

let default_backend ~file ~config src = Api.compile_buffered ~config ~file src

(* The observable of one cell: exit code plus the simulator trace line
   (the host traces all of A and B after the kernel, so this is the final
   memory).  A failing cell observes its structured error line — the
   taxonomy rendering, not the full diagnostics, which carry cell-varying
   noise (optimizer remarks) that would make two identically-failing
   cells look different. *)
let observation_of_compiled (r : Api.compiled) =
  let lines l = String.split_on_char '\n' l in
  let has_prefix p l = String.length l >= String.length p && String.equal (String.sub l 0 (String.length p)) p in
  if r.Api.exit_code = 0 then
    match List.find_opt (has_prefix "; trace:") (lines r.Api.output) with
    | Some t -> Printf.sprintf "exit:0|%s" t
    | None -> "exit:0|<no trace>"
  else
    let err =
      match r.Api.error with
      | Some e -> Api.Error.to_string e
      | None -> String.trim r.Api.diagnostics
    in
    Printf.sprintf "exit:%d|%s" r.Api.exit_code err

(* every cell compiles under the same file name so that file-labeled
   diagnostics stay comparable across cells *)
let corpus_file = "corpus.c"

let observe ?(backend = default_backend) ?pipeline cell prog =
  let src = Gen.render ~mode:cell.mode prog in
  observation_of_compiled
    (backend ~file:corpus_file ~config:(config_of_cell ?pipeline cell) src)

let checksum obs = String.sub (Sched.Cache.key [ "corpus-obs"; obs ]) 0 12

let reference_cell mode =
  { scheme = Frontend.Codegen.Simplified; mode; pipeline = O0 }

let run_program ?(backend = default_backend) ?pipeline ~index prog =
  let ref_obs mode = observe ~backend (reference_cell mode) prog in
  let refs = List.map (fun m -> (m, ref_obs m)) Gen.modes in
  let cells =
    List.map
      (fun cell ->
        let reference = List.assoc cell.mode refs in
        let obs =
          if cell = reference_cell cell.mode then reference
          else observe ~backend ?pipeline cell prog
        in
        let verdict =
          if String.equal obs reference then Pass
          else
            let obs_sum = checksum obs and ref_sum = checksum reference in
            match classify cell prog with
            | Some cls -> Known { cls; obs = obs_sum; ref_ = ref_sum }
            | None ->
              Fail
                {
                  obs = obs_sum;
                  ref_ = ref_sum;
                  detail = Printf.sprintf "got %s\nwant %s" obs reference;
                }
        in
        { cell; verdict })
      cells
  in
  { index; prog; cells }

let run ?(backend = default_backend) ?pipeline ?(on_program = fun _ -> ())
    ~root ~n () =
  List.init n (fun i ->
      let prog = Gen.generate (Gen.program_stream ~root i) in
      let r = run_program ~backend ?pipeline ~index:i prog in
      on_program r;
      r)

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

let still_fails ?pipeline cell prog =
  match classify cell prog with
  | Some _ -> false
  | None ->
    let reference = observe (reference_cell cell.mode) prog in
    not (String.equal (observe ?pipeline cell prog) reference)

exception Found of Gen.prog

let shrink_failure ?pipeline cell prog =
  let rec loop p =
    match
      Gen.shrink p (fun cand ->
          if still_fails ?pipeline cell cand then raise (Found cand))
    with
    | () -> p
    | exception Found cand -> loop cand
  in
  loop prog

let failures results =
  List.concat_map
    (fun r ->
      List.filter_map
        (fun cr ->
          match cr.verdict with Fail _ -> Some (r, cr) | Pass | Known _ -> None)
        r.cells)
    results

(** Client side of the compile-service wire protocol.

    Two layers:

    - A {!t} is one raw connection: requests written through it are
      answered in order, so a client can pipeline.  All helpers speak
      {!Protocol} v1 and return decoding problems as structured errors
      rather than raising — the only exceptions escaping are
      [Unix.Unix_error] from {!connect} (the daemon is down, the socket
      path is wrong).

    - A {!session} is the resilient layer [mompc --daemon] uses: it owns
      connections internally and gives each compile a deadline, bounded
      jittered retries over transient failures (dropped or reset
      connections, torn response frames, timed-out reads, shed
      [Overload] responses) and transparent reconnect between attempts.
      When the retry budget is exhausted — or no daemon exists at all —
      {!session_compile} returns [Error] and the caller degrades to
      in-process compilation ({!Ompgpu_api.compile_buffered}), whose
      bytes are identical by construction. *)

type t

val connect : ?deadline_s:float -> socket_path:string -> unit -> t
(** Raises [Unix.Unix_error] when nothing listens at [socket_path].
    [deadline_s] arms [SO_RCVTIMEO]/[SO_SNDTIMEO] on the socket, turning
    a wedged daemon into a timed-out read ([Error], transient) instead of
    a hung client. *)

val close : t -> unit
(** Idempotent. *)

val with_connection : socket_path:string -> (t -> 'a) -> 'a
(** [connect], run the callback, always [close]. *)

val roundtrip :
  t -> Protocol.request -> (Protocol.response, Fault.Ompgpu_error.t) result
(** Send one request and block for its response line.  [Error] covers a
    connection closed mid-response, a timed-out read, and undecodable
    response bytes (all [Internal], phase [Serving]). *)

val roundtrip_json :
  t -> Observe.Json.t -> (Observe.Json.t, Fault.Ompgpu_error.t) result
(** {!roundtrip} at the wire level: one JSON line out, one line back,
    no decoding of either — what [mompd request] and protocol tests
    speak. *)

val compile :
  t ->
  ?id:string ->
  ?file:string ->
  ?tenant:string ->
  config:Ompgpu_api.Config.t ->
  string ->
  (Ompgpu_api.compiled, Fault.Ompgpu_error.t) result
(** Compile one source through the daemon.  [Ok] carries every settled
    result — including structured failures ([compiled.exit_code <> 0],
    e.g. a shed request) — whose bytes match a one-shot [mompc]; [Error]
    is reserved for transport/protocol breakdowns ([Internal], phase
    [Serving], [peer] = the socket path, so fleet-mode failures name the
    shard).  [file] defaults to ["<service>"], [id] to ["c0"]; [tenant]
    names the admission-quota identity under the fleet router and is
    omitted from the wire when absent. *)

val stats :
  t -> ?id:string -> unit -> (Observe.Json.t, Fault.Ompgpu_error.t) result
(** The daemon's live counters (schema 2). *)

val health :
  t -> ?id:string -> unit -> (Observe.Json.t, Fault.Ompgpu_error.t) result
(** The daemon's health document (schema 2): status, uptime, in-flight,
    breaker state, restart and journal-replay counts. *)

val fleet :
  t -> ?id:string -> unit -> (Observe.Json.t, Fault.Ompgpu_error.t) result
(** The fleet document (schema 2): ring layout plus one entry per shard
    with its health state and stats.  Only the {!Router} answers this; a
    single-shard daemon rejects it with [Bad_request]. *)

val shutdown :
  t -> ?id:string -> unit -> (unit, Fault.Ompgpu_error.t) result
(** Ask the daemon to drain and stop; [Ok ()] once acknowledged. *)

(** {1 Resilient sessions} *)

type policy = {
  attempts : int;  (** total tries per request, at least 1 *)
  backoff_base_s : float;  (** delay before the first retry *)
  backoff_cap_s : float;  (** exponential growth stops here *)
  deadline_s : float option;  (** per-request socket deadline *)
}

val default_policy : policy
(** 4 attempts, 20ms base doubling to a 250ms cap (deterministically
    jittered by ±25%), 30s deadline.  A daemonless [mompc --daemon]
    falls back in well under a second. *)

type session

val session : ?policy:policy -> socket_path:string -> unit -> session
(** No I/O happens here; the first {!session_compile} connects. *)

val session_compile :
  session ->
  ?id:string ->
  ?file:string ->
  config:Ompgpu_api.Config.t ->
  string ->
  (Ompgpu_api.compiled, Fault.Ompgpu_error.t) result
(** One compile under the resilience loop (see the module header).
    Compiles are pure, so retrying a torn request is always safe.
    [Error] = the daemon could not settle the request inside the budget;
    degrade to in-process compilation. *)

val session_close : session -> unit
(** Drop the session's connection, if any.  Idempotent. *)

val session_retries : session -> int
(** Transient-failure retries performed so far (soak assertions). *)

val session_reconnects : session -> int
(** Successful reconnects after a broken connection. *)

(* The compile service (mompd) and the API façade it serves.

   What the PR's acceptance hangs on lives here: the wire protocol's
   encoding is pinned by goldens, and a daemon compile — cold, warm,
   concurrent, shed, injected-fault — is byte-identical to the one-shot
   [Ompgpu_api.compile_buffered] / [mompc] path for the same source and
   config (stats payloads compared with the nondeterministic [time_s]
   zeroed). *)

module J = Observe.Json
module E = Fault.Ompgpu_error
module A = Ompgpu_api

let tiny = Proxyapps.App.Tiny
let app_source name = (Proxyapps.Apps.find_exn name).Proxyapps.App.omp_source tiny
let all_app_names =
  List.map (fun (a : Proxyapps.App.t) -> a.Proxyapps.App.name) Proxyapps.Apps.all

(* ------------------------------------------------------------------ *)
(* Harness: an in-process daemon on a fresh socket                     *)
(* ------------------------------------------------------------------ *)

let fresh_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    (* Unix-socket paths are length-limited (~108 bytes): keep them short
       and in the system temp dir, never under _build. *)
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mompd-t%d-%d.sock" (Unix.getpid ()) !n)

let with_server ?(domains = 2) ?(capacity = 8) ?watchdog_s ?cache_dir ?state_dir
    ?(injector = Fault.Injector.none) ?(drain_deadline_s = 5.0)
    ?(tiered = false) ?cache_max_entries ?cache_max_bytes ?journal_max_bytes f =
  let socket_path = fresh_socket () in
  let server =
    Service.Server.create
      {
        Service.Server.socket_path;
        domains;
        capacity;
        watchdog_s;
        cache_dir;
        state_dir;
        injector;
        drain_deadline_s;
        tiered;
        cache_max_entries;
        cache_max_bytes;
        journal_max_bytes;
      }
  in
  let thread = Thread.create Service.Server.serve_forever server in
  Fun.protect
    ~finally:(fun () ->
      Service.Server.stop server;
      Thread.join thread)
    (fun () -> f socket_path)

let ok_exn = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected service error: %s" (E.to_string e)

(* Zero every [time_us] member: pass events carry wall times, the only
   nondeterministic bytes in a stats payload. *)
let rec zero_times = function
  | J.Obj ms ->
    J.Obj
      (List.map
         (fun (k, v) ->
           if String.equal k "time_us" then (k, J.Int 0) else (k, zero_times v))
         ms)
  | J.List xs -> J.List (List.map zero_times xs)
  | j -> j

let check_same_compiled what (expected : A.compiled) (got : A.compiled) =
  Alcotest.(check int) (what ^ ": exit code") expected.A.exit_code got.A.exit_code;
  Alcotest.(check string) (what ^ ": stdout bytes") expected.A.output got.A.output;
  Alcotest.(check string)
    (what ^ ": stderr bytes")
    expected.A.diagnostics got.A.diagnostics;
  let stats r = Option.map (fun s -> J.to_string (zero_times s)) r.A.stats in
  Alcotest.(check (option string))
    (what ^ ": stats payload (time_s zeroed)")
    (stats expected) (stats got)

(* ------------------------------------------------------------------ *)
(* Protocol goldens                                                    *)
(* ------------------------------------------------------------------ *)

let wire j = J.to_string ~minify:true j

let test_request_goldens () =
  (* the wire version, the API version and the observability schema are
     three distinct version numbers; pin all three so a bump that forgets
     one of them fails here, not in a client *)
  Alcotest.(check int) "api_version is 2" 2 A.api_version;
  Alcotest.(check int) "protocol version is 2" 2 Service.Protocol.version;
  Alcotest.(check int) "schema_version is 2" 2 J.schema_version;
  Alcotest.(check string)
    "stats request" {|{"v":2,"id":"s1","op":"stats"}|}
    (wire (Service.Protocol.request_to_json (Service.Protocol.Stats { id = "s1" })));
  Alcotest.(check string)
    "shutdown request" {|{"v":2,"id":"q1","op":"shutdown"}|}
    (wire
       (Service.Protocol.request_to_json (Service.Protocol.Shutdown { id = "q1" })));
  Alcotest.(check string)
    "compile request, default config"
    ({|{"v":2,"id":"c1","op":"compile","file":"t.c","source":"int main() { return 0; }",|}
    ^ {|"config":{"scheme":"simplified","optimize":false,"emit_ir":true,"run":false,|}
    ^ {|"remarks_only":false,"stats":false,"trace":false,"inject":[],"retries":0,|}
    ^ {|"backoff":0.050000000000000003,"backtrace":false}}|})
    (wire
       (Service.Protocol.request_to_json
          (Service.Protocol.Compile
             {
               id = "c1";
               file = "t.c";
               source = "int main() { return 0; }";
               config = A.Config.default;
               tenant = None;
             })));
  (* a simulating config travels as op "run" *)
  let run_req =
    Service.Protocol.request_to_json
      (Service.Protocol.Compile
         {
           id = "c2";
           file = "t.c";
           source = "x";
           config = A.Config.(default |> optimized |> with_sim);
           tenant = None;
         })
  in
  Alcotest.(check (option string))
    "run op" (Some "run")
    (Option.bind (J.member "op" run_req) J.to_str)

let test_response_goldens () =
  Alcotest.(check string)
    "shutdown ack" {|{"v":2,"id":"q1","op":"shutdown","ok":true}|}
    (wire
       (Service.Protocol.response_to_json
          (Service.Protocol.Shutdown_ack { id = "q1" })));
  let shed =
    Service.Protocol.response_to_json
      (Service.Protocol.Compiled
         {
           id = "c9";
           op = "compile";
           result =
             A.errored ~file:"t.c"
               (E.make
                  (E.Overload { pending = 3; capacity = 3 })
                  ~phase:E.Serving "request shed");
         })
  in
  Alcotest.(check (option int))
    "shed response carries exit 40" (Some 40)
    (Option.bind (J.member "exit_code" shed) J.to_int);
  Alcotest.(check (option string))
    "shed response carries the overload kind" (Some "overload")
    (Option.bind (J.member "error" shed) (fun e ->
         Option.bind (J.member "kind" e) J.to_str))

let test_request_roundtrip () =
  let config =
    A.Config.(
      default |> with_scheme Frontend.Codegen.Legacy
      |> optimized
           ~options:
             {
               Openmpopt.Pass_manager.default_options with
               disable_spmdization = true;
               disable_heap_to_shared = true;
             }
      |> with_sim |> with_stats
      |> with_retries ~backoff_s:0.25 2)
  in
  let req =
    Service.Protocol.Compile
      { id = "r1"; file = "a.c"; source = "src"; config; tenant = Some "t-acme" }
  in
  match Service.Protocol.request_of_json (Service.Protocol.request_to_json req) with
  | Error e -> Alcotest.failf "round-trip rejected: %s" (E.to_string e)
  | Ok (Service.Protocol.Compile { id; file; source; config = config'; tenant }) ->
    Alcotest.(check string) "id" "r1" id;
    Alcotest.(check string) "file" "a.c" file;
    Alcotest.(check string) "source" "src" source;
    Alcotest.(check string)
      "config fingerprint survives the wire"
      (A.Config.fingerprint config)
      (A.Config.fingerprint config');
    Alcotest.(check int) "retries" 2 config'.A.Config.retries;
    Alcotest.(check (float 1e-9)) "backoff" 0.25 config'.A.Config.backoff_s;
    Alcotest.(check (option string))
      "tenant survives the wire" (Some "t-acme") tenant
  | Ok _ -> Alcotest.fail "round-trip changed the operation"

let test_bad_requests () =
  let reject what j expected_fragment =
    match Service.Protocol.request_of_json j with
    | Ok _ -> Alcotest.failf "%s: accepted" what
    | Error e ->
      Alcotest.(check string) (what ^ ": kind") "bad-request" (E.kind_name e.E.kind);
      Alcotest.(check int) (what ^ ": exit code") 42 (E.exit_code e);
      let contains s frag =
        let ls = String.length s and lf = String.length frag in
        let rec go i = i + lf <= ls && (String.sub s i lf = frag || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: message mentions %S (got %S)" what expected_fragment
           e.E.message)
        true
        (contains e.E.message expected_fragment)
  in
  reject "wrong version"
    (J.Obj [ ("v", J.Int 99); ("id", J.String "x"); ("op", J.String "stats") ])
    "version 99";
  (* the v1 wire is gone: a v1 client gets a structured refusal naming
     both versions, never a silently-different answer *)
  reject "v1 request"
    (J.Obj [ ("v", J.Int 1); ("id", J.String "x"); ("op", J.String "stats") ])
    "version 1";
  reject "missing id" (J.Obj [ ("v", J.Int 2); ("op", J.String "stats") ]) "id";
  reject "unknown op"
    (J.Obj [ ("v", J.Int 2); ("id", J.String "x"); ("op", J.String "explode") ])
    "explode";
  reject "compile without source"
    (J.Obj [ ("v", J.Int 2); ("id", J.String "x"); ("op", J.String "compile") ])
    "source";
  reject "bad pass toggle"
    (J.Obj
       [
         ("v", J.Int 2);
         ("id", J.String "x");
         ("op", J.String "compile");
         ("source", J.String "s");
         ( "config",
           J.Obj
             [
               ("optimize", J.Bool true); ("disable", J.List [ J.String "warp-speed" ]);
             ] );
       ])
    "warp-speed";
  (* pipeline spec errors surface as Bad_request with the offending pass
     named, exactly like the CLI's --pipeline validation *)
  reject "unknown pass in pipeline spec"
    (J.Obj
       [
         ("v", J.Int 2);
         ("id", J.String "x");
         ("op", J.String "compile");
         ("source", J.String "s");
         ("config", J.Obj [ ("pipeline", J.String "internalize,warp-speed@2") ]);
       ])
    "warp-speed";
  reject "pipeline combined with optimize"
    (J.Obj
       [
         ("v", J.Int 2);
         ("id", J.String "x");
         ("op", J.String "compile");
         ("source", J.String "s");
         ( "config",
           J.Obj [ ("pipeline", J.String "fast"); ("optimize", J.Bool true) ] );
       ])
    "may not be combined"

(* an explicit pipeline replaces the legacy optimize/disable members on
   the wire and survives the round trip with its identity intact *)
let test_pipeline_on_the_wire () =
  let config = A.Config.(default |> with_pipeline A.Pipeline.fast) in
  let j = Service.Protocol.config_to_json config in
  Alcotest.(check (option string))
    "pipeline member is the spec string"
    (Some "fast=internalize,fold,cleanup@1")
    (Option.bind (J.member "pipeline" j) J.to_str);
  Alcotest.(check bool)
    "legacy optimize member omitted" true
    (J.member "optimize" j = None && J.member "disable" j = None);
  match Service.Protocol.config_of_json j with
  | Error e -> Alcotest.failf "pipeline config rejected: %s" e
  | Ok config' ->
    Alcotest.(check string)
      "config fingerprint survives the wire"
      (A.Config.fingerprint config)
      (A.Config.fingerprint config');
    (match config'.A.Config.pipeline with
    | Some p ->
      Alcotest.(check string)
        "the pipeline itself survives"
        (A.Pipeline.to_string A.Pipeline.fast)
        (A.Pipeline.to_string p)
    | None -> Alcotest.fail "pipeline member lost in decoding")

(* ------------------------------------------------------------------ *)
(* Daemon round-trips                                                  *)
(* ------------------------------------------------------------------ *)

(* Every proxy app at Tiny scale, full pipeline + simulator + stats: the
   daemon's answer must match the one-shot façade compile byte for byte
   (the acceptance criterion of the PR). *)
let test_daemon_byte_identical () =
  let config = A.Config.(default |> optimized |> with_sim |> with_stats) in
  with_server @@ fun socket_path ->
  Service.Client.with_connection ~socket_path @@ fun c ->
  List.iter
    (fun name ->
      let file = name ^ ".momp" in
      let source = app_source name in
      let oneshot = A.compile_buffered ~config ~file source in
      let served = ok_exn (Service.Client.compile c ~file ~config source) in
      check_same_compiled (name ^ " via daemon") oneshot served)
    all_app_names

let test_daemon_warm_cache () =
  let config = A.Config.(default |> optimized) in
  let source = app_source "xsbench" in
  with_server @@ fun socket_path ->
  Service.Client.with_connection ~socket_path @@ fun c ->
  let first = ok_exn (Service.Client.compile c ~file:"x.momp" ~config source) in
  let second = ok_exn (Service.Client.compile c ~file:"x.momp" ~config source) in
  check_same_compiled "warm replay" first second;
  let stats = ok_exn (Service.Client.stats c ()) in
  let cache_member k =
    Option.bind (J.member "cache" stats) (fun c -> Option.bind (J.member k c) J.to_int)
  in
  Alcotest.(check (option int)) "one warm hit" (Some 1) (cache_member "hits");
  Alcotest.(check (option int)) "one cold miss" (Some 1) (cache_member "misses");
  Alcotest.(check (option int))
    "stats payload is schema-stamped" (Some J.schema_version)
    (Option.bind (J.member "schema" stats) J.to_int)

let test_daemon_health () =
  with_server @@ fun socket_path ->
  Service.Client.with_connection ~socket_path @@ fun c ->
  let health = ok_exn (Service.Client.health c ()) in
  let str k = Option.bind (J.member k health) J.to_str in
  Alcotest.(check (option string)) "status" (Some "ok") (str "status");
  Alcotest.(check (option string)) "breaker" (Some "closed") (str "breaker");
  Alcotest.(check (option int))
    "no restarts" (Some 0)
    (Option.bind (J.member "restarts" health) J.to_int);
  Alcotest.(check (option int))
    "schema-stamped" (Some J.schema_version)
    (Option.bind (J.member "schema" health) J.to_int);
  Alcotest.(check bool)
    "journal replay counters present" true
    (Option.is_some (J.member "journal" health));
  (* health rides the stats payload too, as the "service" object *)
  let stats = ok_exn (Service.Client.stats c ()) in
  Alcotest.(check (option string))
    "stats.service.breaker" (Some "closed")
    (Option.bind (J.member "service" stats) (fun s ->
         Option.bind (J.member "breaker" s) J.to_str))

(* Concurrent clients, one per app, several rounds each: the fan-in must
   produce exactly the bytes sequential one-shot compiles produce — no
   cross-request bleed through the shared pool, caches or counters. *)
let test_daemon_concurrent_fan_in () =
  let config = A.Config.(default |> optimized |> with_sim) in
  let expected =
    List.map
      (fun name ->
        (name, A.compile_buffered ~config ~file:(name ^ ".momp") (app_source name)))
      all_app_names
  in
  with_server ~domains:3 ~capacity:16 @@ fun socket_path ->
  let results = Array.make (List.length expected) None in
  let threads =
    List.mapi
      (fun i (name, _) ->
        Thread.create
          (fun () ->
            Service.Client.with_connection ~socket_path @@ fun c ->
            let rs =
              List.init 3 (fun _ ->
                  Service.Client.compile c ~file:(name ^ ".momp") ~config
                    (app_source name))
            in
            results.(i) <- Some rs)
          ())
      expected
  in
  List.iter Thread.join threads;
  List.iteri
    (fun i (name, oneshot) ->
      match results.(i) with
      | None -> Alcotest.failf "%s: client thread died" name
      | Some rs ->
        List.iteri
          (fun round r ->
            check_same_compiled
              (Printf.sprintf "%s round %d under concurrency" name round)
              oneshot (ok_exn r))
          rs)
    expected

let test_daemon_load_shed () =
  (* capacity 0 sheds deterministically: every compile answers exit 40
     with the structured, transient overload — and the daemon keeps
     serving protocol traffic afterwards. *)
  with_server ~capacity:0 @@ fun socket_path ->
  Service.Client.with_connection ~socket_path @@ fun c ->
  let r =
    ok_exn
      (Service.Client.compile c ~file:"x.momp" ~config:A.Config.default
         (app_source "xsbench"))
  in
  Alcotest.(check int) "shed exit code" 40 r.A.exit_code;
  (match r.A.error with
  | Some e ->
    Alcotest.(check string) "overload kind" "overload" (E.kind_name e.E.kind);
    Alcotest.(check bool) "overload is transient" true (E.is_transient e)
  | None -> Alcotest.fail "shed response without a structured error");
  let stats = ok_exn (Service.Client.stats c ()) in
  Alcotest.(check (option int))
    "shed counter" (Some 1)
    (Option.bind (J.member "requests" stats) (fun r ->
         Option.bind (J.member "shed" r) J.to_int))

let test_daemon_survives_pass_crash () =
  (* A request arriving with pass-crash armed fails structurally (exit 14)
     with the same bytes the one-shot driver prints — and the daemon, pool
     included, keeps serving clean requests afterwards. *)
  let spec =
    match Fault.Injector.parse_spec "pass-crash:1.0" with
    | Ok s -> s
    | Error m -> Alcotest.fail m
  in
  let crash_config = A.Config.(default |> optimized |> with_inject [ spec ]) in
  let clean_config = A.Config.(default |> optimized) in
  let source = app_source "su3bench" in
  let file = "s.momp" in
  with_server @@ fun socket_path ->
  Service.Client.with_connection ~socket_path @@ fun c ->
  let oneshot = A.compile_buffered ~config:crash_config ~file source in
  Alcotest.(check int) "injected one-shot fails as pass-crash" 14
    oneshot.A.exit_code;
  let served = ok_exn (Service.Client.compile c ~file ~config:crash_config source) in
  check_same_compiled "injected failure via daemon" oneshot served;
  let clean = ok_exn (Service.Client.compile c ~file ~config:clean_config source) in
  Alcotest.(check int) "daemon still compiles cleanly" 0 clean.A.exit_code

let test_daemon_rejects_garbage_line () =
  with_server @@ fun socket_path ->
  Service.Client.with_connection ~socket_path @@ fun c ->
  (* a syntactically valid JSON line that is not a request *)
  let reply = ok_exn (Service.Client.roundtrip_json c (J.String "hello")) in
  Alcotest.(check (option bool))
    "rejected" (Some false)
    (Option.bind (J.member "ok" reply) (function J.Bool b -> Some b | _ -> None));
  Alcotest.(check (option string))
    "bad-request kind" (Some "bad-request")
    (Option.bind (J.member "error" reply) (fun e ->
         Option.bind (J.member "kind" e) J.to_str));
  (* the connection survives the bad line *)
  let r =
    ok_exn
      (Service.Client.compile c ~file:"x.momp" ~config:A.Config.default
         (app_source "xsbench"))
  in
  Alcotest.(check int) "next request on the same connection" 0 r.A.exit_code

(* ------------------------------------------------------------------ *)
(* Tiered compilation                                                  *)
(* ------------------------------------------------------------------ *)

let tiers_int stats k =
  Option.bind (J.member "tiers" stats) (fun t ->
      Option.bind (J.member k t) J.to_int)

let rec wait_for_upgrades c ~target deadline =
  let stats = ok_exn (Service.Client.stats c ()) in
  match tiers_int stats "upgrades_done" with
  | Some n when n >= target -> stats
  | _ ->
    if Unix.gettimeofday () > deadline then
      Alcotest.fail "tier upgrade did not land within the deadline"
    else begin
      Thread.delay 0.02;
      wait_for_upgrades c ~target deadline
    end

(* The tentpole's acceptance: a tiered daemon answers a cold
   full-pipeline request from the fast tier; a racing request sees the
   fast bytes or the full bytes — both complete compiles — never a torn
   entry; and once the background upgrade lands, the served bytes are
   identical to a one-shot full-pipeline compile. *)
let test_daemon_tier_upgrade () =
  let config = A.Config.(default |> optimized) in
  let source = app_source "xsbench" in
  let file = "x.momp" in
  let oneshot_full = A.compile_buffered ~config ~file source in
  let oneshot_fast =
    A.compile_buffered
      ~config:A.Config.(default |> with_pipeline A.Pipeline.fast)
      ~file source
  in
  Alcotest.(check bool)
    "precondition: the tiers produce different bytes" false
    (String.equal oneshot_full.A.output oneshot_fast.A.output);
  with_server ~tiered:true @@ fun socket_path ->
  Service.Client.with_connection ~socket_path @@ fun c ->
  let cold = ok_exn (Service.Client.compile c ~file ~config source) in
  check_same_compiled "cold answer is the fast tier" oneshot_fast cold;
  (* racing requests during the upgrade window: each answer must be
     exactly one tier's bytes, never a mixture *)
  List.iteri
    (fun i r ->
      let r = ok_exn r in
      if
        not
          (String.equal r.A.output oneshot_fast.A.output
          || String.equal r.A.output oneshot_full.A.output)
      then Alcotest.failf "racer %d saw torn bytes" i;
      Alcotest.(check int) (Printf.sprintf "racer %d exit code" i) 0 r.A.exit_code)
    (List.init 8 (fun _ -> Service.Client.compile c ~file ~config source));
  let stats = wait_for_upgrades c ~target:1 (Unix.gettimeofday () +. 30.) in
  Alcotest.(check (option bool))
    "stats report tiering enabled" (Some true)
    (Option.bind (J.member "tiers" stats) (fun t ->
         Option.bind (J.member "enabled" t) (function
           | J.Bool b -> Some b
           | _ -> None)));
  Alcotest.(check bool)
    "fast-tier answers were counted" true
    (match tiers_int stats "fast_served" with Some n -> n >= 1 | None -> false);
  Alcotest.(check (option int)) "no failed upgrades" (Some 0)
    (tiers_int stats "upgrades_failed");
  (* post-upgrade, the cached entry IS the one-shot full compile *)
  let warm = ok_exn (Service.Client.compile c ~file ~config source) in
  check_same_compiled "post-upgrade answer is byte-identical to one-shot full"
    oneshot_full warm

(* An untiered daemon must be wholly unaffected by the machinery: cold
   answers are full-pipeline bytes and the tiers counters stay zero. *)
let test_daemon_untiered_unchanged () =
  let config = A.Config.(default |> optimized) in
  let source = app_source "su3bench" in
  let file = "s.momp" in
  let oneshot = A.compile_buffered ~config ~file source in
  with_server @@ fun socket_path ->
  Service.Client.with_connection ~socket_path @@ fun c ->
  let served = ok_exn (Service.Client.compile c ~file ~config source) in
  check_same_compiled "untiered cold answer is full-pipeline" oneshot served;
  let stats = ok_exn (Service.Client.stats c ()) in
  Alcotest.(check (option int)) "no fast-tier answers" (Some 0)
    (tiers_int stats "fast_served");
  Alcotest.(check (option int)) "no upgrades queued" (Some 0)
    (tiers_int stats "upgrades_queued")

(* An explicit fast-tier request against a tiered daemon is served as
   asked and never enqueued for upgrade: the client chose the tier. *)
let test_daemon_explicit_fast_not_upgraded () =
  let config = A.Config.(default |> with_pipeline A.Pipeline.fast) in
  let source = app_source "su3bench" in
  let file = "s.momp" in
  let oneshot = A.compile_buffered ~config ~file source in
  with_server ~tiered:true @@ fun socket_path ->
  Service.Client.with_connection ~socket_path @@ fun c ->
  let served = ok_exn (Service.Client.compile c ~file ~config source) in
  check_same_compiled "explicit fast request served as asked" oneshot served;
  let stats = ok_exn (Service.Client.stats c ()) in
  Alcotest.(check (option int)) "nothing queued for upgrade" (Some 0)
    (tiers_int stats "upgrades_queued")

(* ------------------------------------------------------------------ *)
(* The façade and the CLI agree                                        *)
(* ------------------------------------------------------------------ *)

(* Resolve the driver next to this test binary, so the tests work from
   `dune runtest` (cwd = the sandboxed test dir) and `dune exec` (cwd =
   wherever the user stands) alike. *)
let mompc_exe =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/mompc.exe"

let () =
  if not (Sys.file_exists mompc_exe) then
    failwith ("test_service: mompc binary not found at " ^ mompc_exe)

let run_command cmd =
  let out_file = Filename.temp_file "svc" ".out" in
  let err_file = Filename.temp_file "svc" ".err" in
  let code =
    Sys.command
      (Printf.sprintf "%s > %s 2> %s" cmd (Filename.quote out_file)
         (Filename.quote err_file))
  in
  let read f = In_channel.with_open_text f In_channel.input_all in
  let out = read out_file and err = read err_file in
  Sys.remove out_file;
  Sys.remove err_file;
  (code, out, err)

let with_source_file source f =
  let path = Filename.temp_file "svc" ".momp.c" in
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc source);
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

(* [Ompgpu_api.compile_buffered] IS what mompc prints: same bytes, same
   exit code — the façade test the satellite asks for. *)
let test_facade_matches_cli () =
  let config = A.Config.(default |> optimized |> with_sim) in
  with_source_file (app_source "rsbench") @@ fun path ->
  let facade = A.compile_buffered ~config ~file:path (app_source "rsbench") in
  let code, out, err =
    run_command (Printf.sprintf "%s -O --run %s" mompc_exe (Filename.quote path))
  in
  Alcotest.(check int) "exit code" facade.A.exit_code code;
  Alcotest.(check string) "stdout" facade.A.output out;
  Alcotest.(check string) "stderr" facade.A.diagnostics err

(* mompc --daemon SOCKET against a live in-process server: byte-identical
   to the same mompc invocation without the daemon. *)
let test_cli_daemon_matches_oneshot () =
  with_server @@ fun socket_path ->
  with_source_file (app_source "miniqmc") @@ fun path ->
  let flags = Printf.sprintf "-O --run %s" (Filename.quote path) in
  let code1, out1, err1 = run_command (Printf.sprintf "%s %s" mompc_exe flags) in
  let code2, out2, err2 =
    run_command
      (Printf.sprintf "%s %s --daemon %s" mompc_exe flags
         (Filename.quote socket_path))
  in
  Alcotest.(check int) "exit code" code1 code2;
  Alcotest.(check string) "stdout bytes" out1 out2;
  Alcotest.(check string) "stderr bytes" err1 err2

let contains s frag =
  let ls = String.length s and lf = String.length frag in
  let rec go i = i + lf <= ls && (String.sub s i lf = frag || go (i + 1)) in
  go 0

(* The PR-4 compatibility aliases served their one-release grace period
   (docs/API.md deprecation policy) and are retired with api_version 2:
   the old spellings that are not a prefix of a canonical flag are now
   CLI parse errors, while the canonical spellings keep working.
   (--cache and --stats still parse, but only as cmdliner's unambiguous
   abbreviation of --cache-dir and --stats-json — the same meaning, so
   there is nothing separate to pin for them.) *)
let test_retired_aliases () =
  with_source_file (app_source "xsbench") @@ fun path ->
  let quoted = Filename.quote path in
  let code_canonical, _, _ =
    run_command (Printf.sprintf "%s -O -j 2 %s" mompc_exe quoted)
  in
  Alcotest.(check int) "canonical -j still parses" 0 code_canonical;
  List.iter
    (fun (flag, value) ->
      let code, _, err =
        run_command (Printf.sprintf "%s -O %s %s %s" mompc_exe flag value quoted)
      in
      Alcotest.(check int) (flag ^ ": retired spelling is a CLI error") 124 code;
      Alcotest.(check bool)
        (flag ^ ": named in the usage error")
        true (contains err flag))
    [ ("--domains", "2"); ("--fault-inject", "pass-crash:1.0") ]

(* mompc --pipeline: full is byte-identical to -O, fast compiles, bad
   specs and mixing with the legacy toggles are structured Bad_requests
   (exit 42). *)
let test_cli_pipeline_flag () =
  with_source_file (app_source "xsbench") @@ fun path ->
  let quoted = Filename.quote path in
  let code_o, out_o, err_o =
    run_command (Printf.sprintf "%s -O %s" mompc_exe quoted)
  in
  let code_p, out_p, err_p =
    run_command (Printf.sprintf "%s --pipeline full %s" mompc_exe quoted)
  in
  Alcotest.(check int) "--pipeline full: exit code of -O" code_o code_p;
  Alcotest.(check string) "--pipeline full: stdout bytes of -O" out_o out_p;
  Alcotest.(check string) "--pipeline full: stderr bytes of -O" err_o err_p;
  let code_fast, out_fast, _ =
    run_command (Printf.sprintf "%s --pipeline fast %s" mompc_exe quoted)
  in
  Alcotest.(check int) "--pipeline fast compiles" 0 code_fast;
  Alcotest.(check bool)
    "fast is a different tier (different bytes)" false
    (String.equal out_fast out_p);
  let code_bad, _, err_bad =
    run_command
      (Printf.sprintf "%s --pipeline internalize,warp-speed@1 %s" mompc_exe
         quoted)
  in
  Alcotest.(check int) "unknown pass is exit 42" 42 code_bad;
  Alcotest.(check bool)
    "unknown pass named" true (contains err_bad "warp-speed");
  let code_mix, _, err_mix =
    run_command (Printf.sprintf "%s --pipeline fast -O %s" mompc_exe quoted)
  in
  Alcotest.(check int) "--pipeline with -O refused (exit 42)" 42 code_mix;
  Alcotest.(check bool)
    "mixing error mentions the conflict" true
    (contains err_mix "may not be combined")

let suite =
  [
    Alcotest.test_case "protocol/request-goldens" `Quick test_request_goldens;
    Alcotest.test_case "protocol/response-goldens" `Quick test_response_goldens;
    Alcotest.test_case "protocol/request-roundtrip" `Quick test_request_roundtrip;
    Alcotest.test_case "protocol/bad-requests" `Quick test_bad_requests;
    Alcotest.test_case "protocol/pipeline-on-the-wire" `Quick
      test_pipeline_on_the_wire;
    Alcotest.test_case "daemon/byte-identical-all-apps" `Quick
      test_daemon_byte_identical;
    Alcotest.test_case "daemon/warm-cache" `Quick test_daemon_warm_cache;
    Alcotest.test_case "daemon/health" `Quick test_daemon_health;
    Alcotest.test_case "daemon/concurrent-fan-in" `Quick
      test_daemon_concurrent_fan_in;
    Alcotest.test_case "daemon/load-shed" `Quick test_daemon_load_shed;
    Alcotest.test_case "daemon/survives-pass-crash" `Quick
      test_daemon_survives_pass_crash;
    Alcotest.test_case "daemon/rejects-garbage-line" `Quick
      test_daemon_rejects_garbage_line;
    Alcotest.test_case "daemon/tier-upgrade" `Quick test_daemon_tier_upgrade;
    Alcotest.test_case "daemon/untiered-unchanged" `Quick
      test_daemon_untiered_unchanged;
    Alcotest.test_case "daemon/explicit-fast-not-upgraded" `Quick
      test_daemon_explicit_fast_not_upgraded;
    Alcotest.test_case "cli/facade-matches-mompc" `Quick test_facade_matches_cli;
    Alcotest.test_case "cli/daemon-matches-oneshot" `Quick
      test_cli_daemon_matches_oneshot;
    Alcotest.test_case "cli/retired-aliases" `Quick test_retired_aliases;
    Alcotest.test_case "cli/pipeline-flag" `Quick test_cli_pipeline_flag;
  ]

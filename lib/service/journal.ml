(* Append-only NDJSON request journal + startup recovery scan (see the
   .mli).  One mutex serializes appends; every append is flushed, so the
   journal is never more than one torn line behind the truth. *)

module J = Observe.Json

let journal_version = 1
let file_name = "journal.ndjson"
let prev_name = "journal.prev.ndjson"

type t = {
  path : string;
  prev_path : string;
  max_bytes : int option;
  on_rotate : (unit -> unit) option;
  mutex : Mutex.t;
  mutable oc : out_channel;
  mutable bytes : int;  (* written to the current file since its open *)
  mutable rotations : int;  (* mid-life size-cap rotations *)
  mutable seq : int;
  mutable closed : bool;
}

type recovery = {
  replayed_ok : int;
  replayed_failed : int;
  interrupted : int;
  torn : int;
}

let empty_recovery =
  { replayed_ok = 0; replayed_failed = 0; interrupted = 0; torn = 0 }

let recovery_to_json r =
  J.Obj
    [
      ("replayed_ok", J.Int r.replayed_ok);
      ("replayed_failed", J.Int r.replayed_failed);
      ("interrupted", J.Int r.interrupted);
      ("torn", J.Int r.torn);
    ]

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755
    with Sys_error _ when Sys.file_exists path -> ()
  end

(* ------------------------------------------------------------------ *)
(* Recovery scan                                                       *)
(* ------------------------------------------------------------------ *)

(* Replay one previous life: count settles, and keep the set of begun
   sequence numbers so begins without settles surface as interrupted.
   Anything unreadable — a torn final write, a foreign line, an unknown
   journal version — counts as torn, never fails the boot. *)
let scan path =
  let pending = Hashtbl.create 64 in
  let ok = ref 0 and failed = ref 0 and torn = ref 0 in
  In_channel.with_open_text path (fun ic ->
      let rec loop () =
        match In_channel.input_line ic with
        | None -> ()
        | Some line ->
          (if String.trim line <> "" then
             match J.of_string line with
             | Error _ -> incr torn
             | Ok j -> (
               match
                 ( Option.bind (J.member "jv" j) J.to_int,
                   Option.bind (J.member "ev" j) J.to_str )
               with
               | Some jv, Some ev when jv = journal_version -> (
                 let seq = Option.bind (J.member "seq" j) J.to_int in
                 match (ev, seq) with
                 | "begin", Some seq -> Hashtbl.replace pending seq ()
                 | "settle", Some seq ->
                   Hashtbl.remove pending seq;
                   if
                     Option.bind (J.member "code" j) J.to_int = Some 0
                   then incr ok
                   else incr failed
                 | _ -> () (* service events carry no request state *))
               | _ -> incr torn));
          loop ()
      in
      loop ());
  {
    replayed_ok = !ok;
    replayed_failed = !failed;
    interrupted = Hashtbl.length pending;
    torn = !torn;
  }

(* ------------------------------------------------------------------ *)
(* Appends + mid-life rotation                                         *)
(* ------------------------------------------------------------------ *)

let render members =
  J.to_string ~minify:true
    (J.with_schema (J.Obj (("jv", J.Int journal_version) :: members)))

let write_line_locked t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc;
  t.bytes <- t.bytes + String.length line + 1

(* Size-cap rotation, mid-life: rename the live file over the previous
   one and reopen fresh.  No recovery scan here — in-flight requests are
   not interrupted, their settle records simply land in the new file (a
   later boot's scan sees their begin in the rotated-away file as neither
   interrupted nor settled, which matches the "at most one life back"
   contract the prev file always had).  Runs with the mutex held; the
   [on_rotate] callback runs in {!append} after the lock drops, so it may
   append events of its own. *)
let rotate_locked t =
  (try close_out t.oc with Sys_error _ -> ());
  (try Sys.rename t.path t.prev_path with Sys_error _ -> ());
  t.oc <-
    Out_channel.open_gen [ Open_append; Open_creat; Open_text ] 0o644 t.path;
  t.bytes <- 0;
  t.rotations <- t.rotations + 1;
  write_line_locked t
    (render [ ("ev", J.String "rotated"); ("n", J.Int t.rotations) ])

let append t members =
  let rotated =
    Mutex.lock t.mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mutex)
      (fun () ->
        if t.closed then false
        else begin
          write_line_locked t (render members);
          match t.max_bytes with
          | Some cap when t.bytes > cap ->
            rotate_locked t;
            true
          | _ -> false
        end)
  in
  if rotated then Option.iter (fun f -> f ()) t.on_rotate

let event t ev members = append t (("ev", J.String ev) :: members)

let begin_request t ~id ~op ~key =
  let seq =
    Mutex.lock t.mutex;
    let s = t.seq in
    t.seq <- s + 1;
    Mutex.unlock t.mutex;
    s
  in
  append t
    [
      ("ev", J.String "begin");
      ("seq", J.Int seq);
      ("id", J.String id);
      ("op", J.String op);
      ("key", J.String key);
    ];
  seq

let settle_request t ~seq ~exit_code =
  append t
    [ ("ev", J.String "settle"); ("seq", J.Int seq); ("code", J.Int exit_code) ]

let path t = t.path
let rotations t =
  Mutex.lock t.mutex;
  let n = t.rotations in
  Mutex.unlock t.mutex;
  n

let open_ ?max_bytes ?on_rotate ~dir () =
  mkdir_p dir;
  let path = Filename.concat dir file_name in
  let recovery =
    if Sys.file_exists path then begin
      let r = try scan path with Sys_error _ -> empty_recovery in
      (* rotate: the previous life stays inspectable, the fresh journal
         starts empty so interrupted counts never double-report *)
      (try Sys.rename path (Filename.concat dir prev_name)
       with Sys_error _ -> ());
      r
    end
    else empty_recovery
  in
  let oc =
    Out_channel.open_gen [ Open_append; Open_creat; Open_text ] 0o644 path
  in
  let t =
    {
      path;
      prev_path = Filename.concat dir prev_name;
      max_bytes = Option.map (max 1) max_bytes;
      on_rotate;
      mutex = Mutex.create ();
      oc;
      bytes = 0;
      rotations = 0;
      seq = 0;
      closed = false;
    }
  in
  event t "recovered" [ ("replay", recovery_to_json recovery) ];
  (t, recovery)

let close t =
  Mutex.lock t.mutex;
  if not t.closed then begin
    t.closed <- true;
    try close_out t.oc with Sys_error _ -> ()
  end;
  Mutex.unlock t.mutex

(* The persistent compile daemon (see the .mli and docs/API.md).

   Layering: connection threads own all protocol work (parsing, admission,
   response framing); the Sched.Pool domains own all compiler work.  The
   only shared mutable state is the counters record (one mutex), the
   caches (thread-safe by construction), the journal (its own mutex) and
   the stop/drain flags.

   Supervision: when created with [~listen_fd] (by {!Supervisor}), the
   server borrows the listening socket — a serve-loop crash severs the
   live connections, re-raises, and leaves the socket bound so the
   supervisor can restart the loop without dropping the address. *)

module J = Observe.Json
module E = Fault.Ompgpu_error

type config = {
  socket_path : string;
  domains : int;
  capacity : int;
  watchdog_s : float option;
  cache_dir : string option;
  state_dir : string option;
  injector : Fault.Injector.t;
  drain_deadline_s : float;
}

let default_config =
  {
    socket_path = "./mompd.sock";
    domains = 2;
    capacity = 8;
    watchdog_s = None;
    cache_dir = None;
    state_dir = None;
    injector = Fault.Injector.none;
    drain_deadline_s = 5.0;
  }

(* Cross-incarnation supervision state: owned by the supervisor, read by
   every incarnation's stats/health answers. *)
type supervision = {
  mutable restarts : int;
  mutable breaker_open : bool;
  mutable last_crash : string option;
}

let new_supervision () =
  { restarts = 0; breaker_open = false; last_crash = None }

(* Request counters; one mutex is plenty (a counter bump per request
   against compiles that take milliseconds). *)
type counters = {
  mutable served : int;  (* responses written, all kinds *)
  mutable compiles : int;  (* compile/run requests admitted *)
  mutable compile_ok : int;
  mutable compile_failed : int;  (* structured failures incl. timeouts *)
  mutable shed : int;  (* rejected by admission control (incl. drain) *)
  mutable stats_requests : int;
  mutable health_requests : int;
  mutable bad_requests : int;
  mutable in_flight : int;  (* admitted, not yet settled *)
  mutable busy : int;  (* requests between parse and response write *)
  mutable injected_drops : int;  (* conn-drop/partial-frame faults fired *)
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  owns_listener : bool;
  pool : Sched.Pool.t;
  cache : Ompgpu_api.compiled Sched.Cache.t;
  disk : Sched.Disk_cache.t option;
  journal : Journal.t option;
  owns_journal : bool;
  recovery : Journal.recovery;
  supervision : supervision;
  counters : counters;
  mutex : Mutex.t;
  mutable stopped : bool;
  mutable draining : bool;
  mutable conns : (Unix.file_descr * Thread.t) list;
  started_at : float;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let bind_listener socket_path =
  (if Sys.file_exists socket_path then
     match (Unix.lstat socket_path).Unix.st_kind with
     | Unix.S_SOCK -> Unix.unlink socket_path
     | _ ->
       invalid_arg
         (Printf.sprintf "Service.Server.create: %s exists and is not a socket"
            socket_path));
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind listen_fd (Unix.ADDR_UNIX socket_path)
   with e ->
     Unix.close listen_fd;
     raise e);
  Unix.listen listen_fd 64;
  listen_fd

let create ?listen_fd ?journal ?supervision cfg =
  let cfg = { cfg with domains = max 1 cfg.domains; capacity = max 0 cfg.capacity } in
  let listen_fd, owns_listener =
    match listen_fd with
    | Some fd -> (fd, false)
    | None -> (bind_listener cfg.socket_path, true)
  in
  let journal, recovery, owns_journal =
    match journal with
    | Some (j, r) -> (Some j, r, false)
    | None -> (
      match cfg.state_dir with
      | None -> (None, Journal.empty_recovery, false)
      | Some dir ->
        let j, r = Journal.open_ ~dir in
        (Some j, r, true))
  in
  {
    cfg;
    listen_fd;
    owns_listener;
    (* the pool queue must outsize admission, so an admitted request never
       blocks in [submit] behind the cap it was admitted under *)
    pool =
      Sched.Pool.create
        ~queue_capacity:(max 1 (cfg.capacity + cfg.domains))
        ~domains:cfg.domains ();
    cache = Sched.Cache.create ();
    disk =
      Option.map (fun dir -> Sched.Disk_cache.create ~dir ()) cfg.cache_dir;
    journal;
    owns_journal;
    recovery;
    supervision = (match supervision with Some s -> s | None -> new_supervision ());
    counters =
      {
        served = 0;
        compiles = 0;
        compile_ok = 0;
        compile_failed = 0;
        shed = 0;
        stats_requests = 0;
        health_requests = 0;
        bad_requests = 0;
        in_flight = 0;
        busy = 0;
        injected_drops = 0;
      };
    mutex = Mutex.create ();
    stopped = false;
    draining = false;
    conns = [];
    started_at = Unix.gettimeofday ();
  }

(* ------------------------------------------------------------------ *)
(* Stats and health                                                    *)
(* ------------------------------------------------------------------ *)

let service_json t =
  let sup = t.supervision in
  J.Obj
    [
      ("restarts", J.Int sup.restarts);
      ("breaker", J.String (if sup.breaker_open then "open" else "closed"));
      ("draining", J.Bool (locked t (fun () -> t.draining)));
      ("journal", Journal.recovery_to_json t.recovery);
      ( "swept_temps",
        J.Int (match t.disk with Some d -> Sched.Disk_cache.swept d | None -> 0)
      );
      ("injected_drops", J.Int t.counters.injected_drops);
    ]

let health_json t =
  let c = t.counters in
  Ompgpu_api.with_schema
    (J.Obj
       ([
          ( "status",
            J.String (if locked t (fun () -> t.draining) then "draining" else "ok")
          );
          ("protocol", J.Int Protocol.version);
          ("uptime_s", J.Float (Unix.gettimeofday () -. t.started_at));
          ("in_flight", J.Int c.in_flight);
          ("capacity", J.Int t.cfg.capacity);
        ]
       @
       match service_json t with J.Obj ms -> ms | _ -> []))

let stats_json t =
  let c, pool_stats =
    locked t (fun () -> (t.counters, Sched.Pool.stats t.pool))
  in
  Ompgpu_api.with_schema
    (J.Obj
       [
         ("protocol", J.Int Protocol.version);
         ("uptime_s", J.Float (Unix.gettimeofday () -. t.started_at));
         ("domains", J.Int (Sched.Pool.domain_count t.pool));
         ("capacity", J.Int t.cfg.capacity);
         ( "requests",
           J.Obj
             [
               ("served", J.Int c.served);
               ("compiles", J.Int c.compiles);
               ("compile_ok", J.Int c.compile_ok);
               ("compile_failed", J.Int c.compile_failed);
               ("shed", J.Int c.shed);
               ("stats", J.Int c.stats_requests);
               ("health", J.Int c.health_requests);
               ("bad", J.Int c.bad_requests);
               ("in_flight", J.Int c.in_flight);
             ] );
         ( "cache",
           J.Obj
             ([
                ("hits", J.Int (Sched.Cache.hits t.cache));
                ("misses", J.Int (Sched.Cache.misses t.cache));
                ("entries", J.Int (Sched.Cache.length t.cache));
              ]
             @
             match t.disk with
             | Some d ->
               [
                 ("disk_hits", J.Int (Sched.Disk_cache.hits d));
                 ("disk_misses", J.Int (Sched.Disk_cache.misses d));
               ]
             | None -> []) );
         ( "pool",
           J.Obj
             [
               ("submitted", J.Int pool_stats.Sched.Pool.submitted);
               ("executed", J.Int pool_stats.Sched.Pool.executed);
               ("stolen", J.Int pool_stats.Sched.Pool.stolen);
               ("max_pending", J.Int pool_stats.Sched.Pool.max_pending);
             ] );
         ("service", service_json t);
       ])

(* ------------------------------------------------------------------ *)
(* Compile dispatch                                                    *)
(* ------------------------------------------------------------------ *)

(* find_or_compute caches whatever the thunk returns, and we only want
   successes in the warm cache (a failure is cheap to recompute and the
   client is about to edit the source anyway) — so failures tunnel out. *)
exception Uncached of Ompgpu_api.compiled

(* Run one admitted compile on the pool, under the optional watchdog.  The
   stalled job keeps its domain until it returns on its own; the request
   settles as a structured timeout and the daemon keeps serving. *)
let pooled_compile t ~config ~file source =
  let fut =
    Sched.Pool.submit t.pool (fun () ->
        Ompgpu_api.compile_buffered ~config ~file source)
  in
  match t.cfg.watchdog_s with
  | None -> Sched.Pool.await fut
  | Some seconds -> (
    match Sched.Pool.await_timeout fut ~seconds with
    | Some r -> r
    | None ->
      Ompgpu_api.errored ~file
        (E.make
           (E.Timeout { seconds })
           ~phase:E.Serving
           (Printf.sprintf "request exceeded its %gs watchdog" seconds)))

(* The disk cache mirrors mompc's policy: only non-stats/trace requests
   (their payloads embed wall times), only successes, same key. *)
let disk_eligible (config : Ompgpu_api.Config.t) =
  (not config.Ompgpu_api.Config.want_stats)
  && not config.Ompgpu_api.Config.print_trace

let compute_compile t ~config ~file ~key source =
  let compile_and_persist () =
    let r = pooled_compile t ~config ~file source in
    (match t.disk with
    | Some d when disk_eligible config && r.Ompgpu_api.exit_code = 0 ->
      Sched.Disk_cache.store d ~key
        ~data:(J.to_string (Ompgpu_api.compiled_to_json r))
    | _ -> ());
    r
  in
  let thunk () =
    let r =
      match t.disk with
      | Some d when disk_eligible config -> (
        match
          Option.bind (Sched.Disk_cache.find d ~key) (fun s ->
              match J.of_string s with
              | Ok j -> Ompgpu_api.compiled_of_json j
              | Error _ -> None)
        with
        | Some r -> r
        | None -> compile_and_persist ())
      | _ -> compile_and_persist ()
    in
    if r.Ompgpu_api.exit_code = 0 then r else raise (Uncached r)
  in
  match Sched.Cache.find_or_compute t.cache ~key thunk with
  | r -> r
  | exception Uncached r -> r

let handle_compile t ~id ~file ~config source =
  (* Admission control: request capacity+1 — and any compile arriving
     while the daemon drains — is shed *now* with a structured overload
     instead of queueing without bound.  The client's bounded retry
     (overload is transient) is the backpressure loop. *)
  let admitted =
    locked t (fun () ->
        if t.draining then Error (`Draining t.counters.in_flight)
        else if t.counters.in_flight >= t.cfg.capacity then begin
          t.counters.shed <- t.counters.shed + 1;
          Error (`Over t.counters.in_flight)
        end
        else begin
          t.counters.in_flight <- t.counters.in_flight + 1;
          t.counters.compiles <- t.counters.compiles + 1;
          Ok ()
        end)
  in
  match admitted with
  | Error (`Draining pending) ->
    locked t (fun () -> t.counters.shed <- t.counters.shed + 1);
    Ompgpu_api.errored ~file
      (E.make
         (E.Overload { pending; capacity = t.cfg.capacity })
         ~phase:E.Serving
         "request shed: the daemon is draining; retry against the restarted \
          daemon or fall back to in-process compilation")
  | Error (`Over pending) ->
    Ompgpu_api.errored ~file
      (E.make
         (E.Overload { pending; capacity = t.cfg.capacity })
         ~phase:E.Serving
         (Printf.sprintf
            "request shed: %d compile(s) in flight against a capacity of %d; \
             retry with backoff"
            pending t.cfg.capacity))
  | Ok () ->
    let key = Ompgpu_api.cache_key ~file ~config ~source in
    let seq =
      Option.map
        (fun j ->
          Journal.begin_request j ~id
            ~op:(if config.Ompgpu_api.Config.run_sim then "run" else "compile")
            ~key)
        t.journal
    in
    let result =
      Fun.protect
        ~finally:(fun () ->
          locked t (fun () -> t.counters.in_flight <- t.counters.in_flight - 1))
        (fun () -> compute_compile t ~config ~file ~key source)
    in
    locked t (fun () ->
        if result.Ompgpu_api.exit_code = 0 then
          t.counters.compile_ok <- t.counters.compile_ok + 1
        else t.counters.compile_failed <- t.counters.compile_failed + 1);
    (match (t.journal, seq) with
    | Some j, Some seq ->
      Journal.settle_request j ~seq ~exit_code:result.Ompgpu_api.exit_code
    | _ -> ());
    result

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

let stop t =
  locked t (fun () ->
      t.stopped <- true;
      t.draining <- true);
  (* wake the blocked accept: shutting a listening socket down makes the
     pending accept fail immediately on Linux *)
  try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let count_injected_drop t =
  locked t (fun () ->
      t.counters.injected_drops <- t.counters.injected_drops + 1)

let respond t ~fd oc response =
  let line = J.to_string ~minify:true (Protocol.response_to_json response) in
  if Fault.Injector.fire t.cfg.injector Fault.Injector.Slow_client then
    Thread.delay 0.15;
  if Fault.Injector.fire t.cfg.injector Fault.Injector.Partial_frame then begin
    (* a torn response: half the line, no newline, then a hard close — the
       client must treat it as a transient transport failure *)
    count_injected_drop t;
    Out_channel.output_string oc (String.sub line 0 (String.length line / 2));
    Out_channel.flush oc;
    (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    raise End_of_file
  end;
  Out_channel.output_string oc line;
  Out_channel.output_char oc '\n';
  Out_channel.flush oc;
  locked t (fun () -> t.counters.served <- t.counters.served + 1)

let handle_connection t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let bad () =
    locked t (fun () -> t.counters.bad_requests <- t.counters.bad_requests + 1)
  in
  (* [busy] brackets parse→response so the drain knows a request is being
     answered even while [in_flight] (compiles only) is zero *)
  let busily f =
    locked t (fun () -> t.counters.busy <- t.counters.busy + 1);
    Fun.protect
      ~finally:(fun () ->
        locked t (fun () -> t.counters.busy <- t.counters.busy - 1))
      f
  in
  let rec loop () =
    match Protocol.read_message ic with
    | `Eof -> ()
    | `Overflow error ->
      (* an oversized frame poisons the whole connection: answer once,
         stop reading (the rest of the line is still in flight) *)
      bad ();
      busily (fun () -> respond t ~fd oc (Protocol.Rejected { id = None; error }))
    | `Msg (Error e) ->
      (* an unparseable line poisons only itself, not the connection *)
      bad ();
      busily (fun () -> respond t ~fd oc (Protocol.Rejected { id = None; error = e }));
      loop ()
    | `Msg (Ok j) ->
      if Fault.Injector.fire t.cfg.injector Fault.Injector.Conn_drop then begin
        (* drop the connection on the floor, mid-request: the client's
           reconnect-and-retry path owns recovery *)
        count_injected_drop t;
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()
      end
      else begin
        (match Protocol.request_of_json j with
        | Error e ->
          bad ();
          let id = Option.bind (J.member "id" j) J.to_str in
          busily (fun () -> respond t ~fd oc (Protocol.Rejected { id; error = e }))
        | Ok (Protocol.Stats { id }) ->
          locked t (fun () ->
              t.counters.stats_requests <- t.counters.stats_requests + 1);
          busily (fun () ->
              respond t ~fd oc
                (Protocol.Stats_reply { id; stats = stats_json t }))
        | Ok (Protocol.Health { id }) ->
          locked t (fun () ->
              t.counters.health_requests <- t.counters.health_requests + 1);
          busily (fun () ->
              respond t ~fd oc
                (Protocol.Health_reply { id; health = health_json t }))
        | Ok (Protocol.Fleet { id }) ->
          (* fleet aggregation is the router's job; a bare shard saying
             "yes" here would masquerade as a one-shard fleet *)
          bad ();
          busily (fun () ->
              respond t ~fd oc
                (Protocol.Rejected
                   {
                     id = Some id;
                     error =
                       E.make E.Bad_request ~phase:E.Serving
                         "fleet: this daemon is a single shard; ask the \
                          fleet router (mompd route)";
                   }))
        | Ok (Protocol.Shutdown { id }) ->
          busily (fun () -> respond t ~fd oc (Protocol.Shutdown_ack { id }));
          stop t;
          raise Exit (* stop reading: the daemon is draining *)
        | Ok (Protocol.Compile { id; file; source; config; tenant = _ }) ->
          let op = if config.Ompgpu_api.Config.run_sim then "run" else "compile" in
          busily (fun () ->
              let result = handle_compile t ~id ~file ~config source in
              respond t ~fd oc (Protocol.Compiled { id; op; result })));
        loop ()
      end
  in
  Fun.protect
    ~finally:(fun () ->
      (try Out_channel.flush oc with Sys_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ());
      locked t (fun () ->
          t.conns <- List.filter (fun (fd', _) -> fd' != fd) t.conns))
    (fun () ->
      try loop () with
      | Exit -> ()
      | Sys_error _ | End_of_file ->
        (* client went away mid-request; nothing to answer *)
        ()
      | e ->
        (* never let a connection kill the daemon: report and move on *)
        let error =
          E.make E.Internal ~phase:E.Serving (Printexc.to_string e)
        in
        (try respond t ~fd oc (Protocol.Rejected { id = None; error })
         with Sys_error _ | End_of_file -> ()))

(* ------------------------------------------------------------------ *)
(* Serve loop, drain, crash containment                                *)
(* ------------------------------------------------------------------ *)

let sever_connections t =
  List.iter
    (fun (fd, _) ->
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    (locked t (fun () -> t.conns))

let join_connections t =
  List.iter (fun (_, th) -> Thread.join th) (locked t (fun () -> t.conns))

(* Drain: let requests that are already being answered finish (up to the
   deadline), then sever the remaining connections — blocked reads see
   EOF, threads exit — join them and take the pool down. *)
let drain t =
  let deadline = Unix.gettimeofday () +. t.cfg.drain_deadline_s in
  let rec wait () =
    if
      locked t (fun () -> t.counters.busy) > 0
      && Unix.gettimeofday () < deadline
    then begin
      Thread.delay 0.01;
      wait ()
    end
  in
  wait ();
  (match t.journal with
  | Some j ->
    Journal.event j "drain"
      [ ("busy", J.Int (locked t (fun () -> t.counters.busy))) ]
  | None -> ());
  sever_connections t;
  join_connections t;
  Sched.Pool.shutdown t.pool

let release_listener t =
  if t.owns_listener then begin
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ()
  end

let close_journal t =
  if t.owns_journal then Option.iter Journal.close t.journal

let serve_forever t =
  let rec accept_loop () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
      if Fault.Injector.fire t.cfg.injector Fault.Injector.Daemon_kill then begin
        (* the serve loop itself dies; connections are severed and the
           supervisor (if any) restarts the loop on the same socket *)
        (try Unix.close fd with Unix.Unix_error _ -> ());
        failwith "injected daemon-kill: serve loop crashed"
      end;
      let thread = Thread.create (fun () -> handle_connection t fd) () in
      locked t (fun () -> t.conns <- (fd, thread) :: t.conns);
      accept_loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      if locked t (fun () -> t.stopped) then () else accept_loop ()
    | exception Unix.Unix_error _ when locked t (fun () -> t.stopped) -> ()
  in
  match accept_loop () with
  | () ->
    (* clean stop: connections finish their in-flight requests (bounded by
       the drain deadline), then the pool goes down and — standalone only —
       the socket file disappears *)
    drain t;
    release_listener t;
    close_journal t
  | exception e ->
    (* serve-loop crash: contain it — sever and join connections, stop the
       pool — and hand the exception to the supervisor with the listening
       socket still bound (supervised) or fully released (standalone) *)
    let bt = Printexc.get_raw_backtrace () in
    locked t (fun () -> t.draining <- true);
    sever_connections t;
    join_connections t;
    (try Sched.Pool.shutdown t.pool with _ -> ());
    release_listener t;
    close_journal t;
    Printexc.raise_with_backtrace e bt

let run cfg = serve_forever (create cfg)

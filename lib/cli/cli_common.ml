(* Shared Cmdliner terms (see the .mli).

   The PR-4 deprecated aliases (--domains, --cache, --stats,
   --fault-inject) served their one-release grace period (docs/API.md
   deprecation policy) and are gone: the options below accept only their
   canonical spellings. *)

open Cmdliner

let jobs =
  Term.(
    const (Option.value ~default:1)
    $ Arg.(
        value
        & opt (some int) None
        & info [ "j"; "jobs" ] ~docv:"N"
            ~doc:
              "Run batch work on $(docv) scheduler domains.  Results are \
               settled in input order, byte-identical to $(b,-j 1)."))

let cache_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Content-addressed compilation cache: memoize each file's \
           compiler output in $(docv), keyed by source text, scheme and \
           pass options.  Ignored with $(b,--stats-json) and \
           $(b,--trace).")

let cache_max_bytes =
  Arg.(
    value
    & opt (some int) None
    & info [ "cache-max-bytes" ] ~docv:"BYTES"
        ~doc:
          "Storage governance: cap the compilation caches at $(docv) \
           bytes — the disk cache ($(b,--cache-dir)) evicts its \
           oldest-written entries on store to stay under the quota, and \
           the daemon's in-memory result cache becomes an LRU bounded by \
           approximate payload bytes.  Evictions are counted in the \
           $(b,storage) stats section.  Unbounded by default.")

let cache_max_entries =
  Arg.(
    value
    & opt (some int) None
    & info [ "cache-max-entries" ] ~docv:"N"
        ~doc:
          "Storage governance: cap the compilation caches at $(docv) \
           entries (LRU eviction; see $(b,--cache-max-bytes)).  \
           Unbounded by default.")

let inject =
  Arg.(
    value
    & opt_all string []
    & info [ "inject" ] ~docv:"SITE[:RATE][:SEED]"
        ~doc:
          "Arm a deterministic fault-injection site (repeatable).  \
           Sites: mem-alloc, shared-budget, sim-trap, pass-crash, \
           cache-corrupt, disk-full, pool-stall.  RATE defaults to 1.0, \
           SEED to 0; the same seed replays the same faults.  See \
           docs/ROBUSTNESS.md.")

let parse_injects specs =
  let ok, errs =
    List.fold_left
      (fun (ok, errs) s ->
        match Fault.Injector.parse_spec s with
        | Ok spec -> (spec :: ok, errs)
        | Error msg -> (ok, msg :: errs))
      ([], []) specs
  in
  if errs <> [] then Error (List.rev errs) else Ok (List.rev ok)

let stats_json =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-json" ] ~docv:"FILE"
        ~doc:
          "Write per-round/per-pass pipeline events, the report counters \
           and (with $(b,--run)) per-kernel simulator cost-model \
           counters as JSON (schema 2) to $(docv).  Single input file \
           only.")

let trace =
  Arg.(
    value & flag
    & info [ "trace" ] ~doc:"Print the per-pass pipeline trace to stderr")

let retries =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Retry a job up to $(docv) times when it fails with a transient \
           taxonomy code (oom, timeout, overload).  Each attempt draws \
           fresh injector coins.")

let backoff =
  Arg.(
    value & opt float 0.05
    & info [ "backoff" ] ~docv:"S"
        ~doc:"Base retry backoff in seconds (doubles per attempt; default 0.05).")

let watchdog =
  Arg.(
    value
    & opt (some float) None
    & info [ "watchdog" ] ~docv:"S"
        ~doc:
          "Declare a job hung after $(docv) seconds and settle it as a \
           structured timeout (exit code 24) instead of blocking the \
           batch or wedging the service.")

let backtrace =
  Arg.(
    value & flag
    & info [ "backtrace" ]
        ~doc:
          "Print the captured raise-point backtrace under each diagnostic \
           (also enabled by OMPGPU_BACKTRACE=1).  Off by default: \
           diagnostics stay byte-stable across runs.")

let socket ?default () =
  let doc =
    "Unix-domain socket of the compile service (newline-delimited JSON, \
     protocol v2; see docs/API.md)."
  in
  match default with
  | None -> Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  | Some d ->
    Term.(
      const (fun s -> Some (Option.value s ~default:d))
      $ Arg.(
          value
          & opt (some string) None
          & info [ "socket" ] ~docv:"PATH" ~absent:d ~doc))

let tiny =
  Arg.(
    value & flag
    & info [ "tiny" ]
        ~doc:"Run proxy applications at Tiny scale (unit-test sized inputs).")

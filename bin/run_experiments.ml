(* Regenerate every table and figure of the paper's evaluation section.

     dune exec bin/run_experiments.exe            # everything
     dune exec bin/run_experiments.exe -- fig9
     dune exec bin/run_experiments.exe -- fig11 xsbench --tiny *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let tiny = List.mem "--tiny" args in
  let args = List.filter (fun a -> a <> "--tiny") args in
  let scale = if tiny then Proxyapps.App.Tiny else Proxyapps.App.Bench in
  let machine = Gpusim.Machine.bench_machine in
  let all () =
    print_string (Harness.Tables.fig9 ~machine ~scale ());
    print_newline ();
    print_string (Harness.Tables.fig10 ~machine ~scale ());
    print_newline ();
    print_string (Harness.Tables.fig11_all ~machine ~scale ());
    print_newline ();
    print_string (Harness.Tables.ablations ~machine ~scale ())
  in
  match args with
  | [] -> all ()
  | [ "fig9" ] -> print_string (Harness.Tables.fig9 ~machine ~scale ())
  | [ "fig10" ] -> print_string (Harness.Tables.fig10 ~machine ~scale ())
  | [ "fig11" ] -> print_string (Harness.Tables.fig11_all ~machine ~scale ())
  | [ "fig11"; name ] ->
    print_string (Harness.Tables.fig11 ~machine ~scale (Proxyapps.Apps.find_exn name))
  | [ "ablations" ] -> print_string (Harness.Tables.ablations ~machine ~scale ())
  | _ ->
    prerr_endline "usage: run_experiments [fig9|fig10|fig11 [app]|ablations] [--tiny]";
    exit 2

(** Recursive-descent parser for MiniOMP. *)

exception Parse_error of string * Support.Loc.t

val parse_program : file:string -> string -> Ast.program

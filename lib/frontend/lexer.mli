(** Hand-written lexer for MiniOMP.  Pragma lines are delivered whole, as the
    word list following "#pragma omp". *)

type token =
  | INT_LIT of int64
  | FLOAT_LIT of float
  | IDENT of string
  | KW of string
  | PRAGMA of string list * Support.Loc.t
  | PUNCT of string
  | EOF

type spanned = { tok : token; loc : Support.Loc.t }

exception Lex_error of string * Support.Loc.t

val tokenize : file:string -> string -> spanned list

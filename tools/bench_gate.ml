(* bench_gate: the CI benchmark-regression gate.

     bench_gate BASELINE.json NEW.json [--threshold PCT]

   Compares two BENCH_observe.json files (the committed baseline vs a fresh
   run) and fails — exit 1 — when any per-app cost-model counter regresses
   by more than the threshold (default 20%).

   Only deterministic simulator counters are gated: per-app barriers and the
   store counts summed over kernel launches (global + shared + local).
   Wall-clock numbers (bechamel estimates, the sched speedup) are *never*
   gated — they measure the CI host, not the compiler. *)

let threshold = ref 20.0

let die fmt = Fmt.kstr (fun s -> prerr_endline ("bench_gate: " ^ s); exit 2) fmt

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> die "%s" msg
  | s -> (
    match Observe.Json.of_string s with
    | Ok j -> j
    | Error msg -> die "%s: %s" path msg)

(* Unversioned payloads are rejected outright: a schema-less file predates
   the stamp (regenerate it) and a future schema may change counter
   semantics under the same member names. *)
let require_schema path j =
  match Option.bind (Observe.Json.member "schema" j) Observe.Json.to_int with
  | Some v when v = Observe.Json.schema_version -> ()
  | Some v ->
    die "%s: unsupported schema %d (this gate reads schema %d)" path v
      Observe.Json.schema_version
  | None ->
    die
      "%s: unversioned payload (no \"schema\" member); regenerate it with a \
       current bench/main.exe"
      path

(* The corpus throughput section (bench/main.exe, `make conformance`)
   must be present and itself schema-stamped; its compiles/sec numbers
   are wall-clock and never gated, but byte-identity of daemon answers
   with in-process compilation is machine-independent and must hold. *)
let require_corpus path j =
  match Observe.Json.member "corpus" j with
  | None ->
    die
      "%s: no \"corpus\" member (daemon throughput section); regenerate it \
       with a current bench/main.exe or `make conformance`"
      path
  | Some c -> (
    require_schema (path ^ ": corpus") c;
    let to_bool = function Observe.Json.Bool b -> Some b | _ -> None in
    match Option.bind (Observe.Json.member "byte_identical" c) to_bool with
    | Some true -> ()
    | Some false ->
      die "%s: corpus section recorded byte_identical=false (daemon answers \
           diverged from in-process compilation)"
        path
    | None -> die "%s: corpus section without \"byte_identical\"" path)

let measurements j =
  match Option.bind (Observe.Json.member "measurements" j) Observe.Json.to_list with
  | Some ms -> ms
  | None -> die "no \"measurements\" member"

let str_member k j =
  match Option.bind (Observe.Json.member k j) Observe.Json.to_str with
  | Some s -> s
  | None -> die "measurement without %S" k

let int_member k j =
  match Option.bind (Observe.Json.member k j) Observe.Json.to_int with
  | Some n -> n
  | None -> die "measurement without counter %S" k

(* the gated counters for one measurement: name -> value *)
let counters m =
  let kernels =
    Option.value ~default:[]
      (Option.bind (Observe.Json.member "kernels" m) Observe.Json.to_list)
  in
  let sum key = List.fold_left (fun acc k -> acc + int_member key k) 0 kernels in
  [
    ("barriers", int_member "barriers" m);
    ("stores_global", sum "stores_global");
    ("stores_shared", sum "stores_shared");
    ("stores_local", sum "stores_local");
  ]

let () =
  let positional = ref [] in
  let rec parse = function
    | [] -> ()
    | "--threshold" :: v :: rest -> (
      match float_of_string_opt v with
      | Some t when t > 0.0 ->
        threshold := t;
        parse rest
      | _ -> die "--threshold expects a positive number")
    | a :: rest ->
      positional := a :: !positional;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let baseline_path, new_path =
    match List.rev !positional with
    | [ b; n ] -> (b, n)
    | _ ->
      prerr_endline "usage: bench_gate BASELINE.json NEW.json [--threshold PCT]";
      exit 2
  in
  let base_json = load baseline_path in
  let next_json = load new_path in
  require_schema baseline_path base_json;
  require_schema new_path next_json;
  require_corpus baseline_path base_json;
  require_corpus new_path next_json;
  let base = measurements base_json in
  let next = measurements next_json in
  let find_app app ms =
    List.find_opt (fun m -> String.equal (str_member "app" m) app) ms
  in
  let failures = ref 0 in
  Fmt.pr "bench_gate: %s vs %s (threshold %+.0f%%)@." baseline_path new_path
    !threshold;
  Fmt.pr "%-10s %-14s %12s %12s %9s@." "app" "counter" "baseline" "new" "delta";
  List.iter
    (fun bm ->
      let app = str_member "app" bm in
      match find_app app next with
      | None ->
        Fmt.pr "%-10s MISSING from %s@." app new_path;
        incr failures
      | Some nm ->
        List.iter2
          (fun (name, bv) (name', nv) ->
            assert (String.equal name name');
            let delta =
              if bv = 0 then if nv = 0 then 0.0 else infinity
              else 100.0 *. float_of_int (nv - bv) /. float_of_int bv
            in
            let verdict = if delta > !threshold then "FAIL" else "" in
            if delta > !threshold then incr failures;
            if delta <> 0.0 || verdict <> "" then
              Fmt.pr "%-10s %-14s %12d %12d %+8.1f%% %s@." app name bv nv delta
                verdict)
          (counters bm) (counters nm))
    base;
  if !failures > 0 then begin
    Fmt.pr "bench_gate: %d counter regression(s) above %+.0f%%@." !failures
      !threshold;
    exit 1
  end
  else Fmt.pr "bench_gate: OK (no counter regression above %+.0f%%)@." !threshold

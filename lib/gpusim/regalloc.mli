(** Static per-thread register estimate for a kernel (the "# Regs" column of
    the paper's Figure 10).

    Walks the call graph from the kernel; each function contributes its
    liveness-derived virtual-register pressure, and the presence of an
    indirect call site (the generic-mode state machine's dispatch) adds the
    spill penalty that the custom state machine rewrite removes. *)

val base_registers : int
val indirect_call_penalty : int
val call_overhead : int
val max_registers : int

val estimate : Ir.Irmod.t -> Ir.Func.t -> int

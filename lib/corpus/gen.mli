(** Seeded grammar-based MiniOMP program generator.

    Promoted and generalized from the private grammar [test/test_fuzz.ml]
    carried: small integer kernels over two global arrays ([A] for
    values, [B] for atomic accumulators) whose observable behavior — the
    host-traced final contents of both arrays — is deterministic by
    construction under every correct build, so any cross-configuration
    trace difference is a compiler bug (or a documented unsoundness, see
    {!Matrix}).  Extensions over the fuzz grammar:

    - {b shared-budget-stressing local arrays} ([Local_arr]): globalized
      local arrays whose footprint ranges from a few words to well past
      the per-team shared budget, exercising the graceful heap-fallback
      path of the simplified globalization scheme;
    - {b cross-thread escapes} ([Escape]): the paper's Figure 3 shape —
      thread 0 publishes the address of a local, every thread reads
      through it after a barrier.  Sound under the simplified scheme;
      the legacy SPMD fast path and raw CUDA semantics read their own
      private copy instead (the ledger's known-divergence classes);
    - {b execution mode as an external dimension}: one program renders
      both as a generic-mode kernel ([target teams distribute]) and as an
      SPMD-eligible one ([... parallel for]), so the differential matrix
      covers both lowering shapes from a single seed.

    Determinism rules encoded by construction: plain stores to [A] only
    store iteration-independent values (racy slot writes are idempotent),
    accumulations go through atomics, [Escape] forces a one-team kernel
    whose trip count equals the thread limit so its barriers cannot
    diverge, and programs with barriers keep them out of generic mode. *)

type expr =
  | Cst of int
  | Var_i  (** outer loop induction variable *)
  | Var_j  (** inner (nested-parallel) induction variable *)
  | Read_a of int
  | Add of expr * expr
  | Mul of expr * expr

type stmt =
  | Store_a of int * expr  (** [A[k] = e]; [e] is i-independent *)
  | Store_ai of expr  (** [A[(i + 7) %% 8] = e] *)
  | Atomic_b of expr  (** [atomic B[0] += e] *)
  | Local of expr  (** address-taken scalar local, same-thread use *)
  | Nested of expr  (** inner [parallel for] accumulating into [B[2]] *)
  | Local_arr of int * expr
      (** [long arr[len]] (globalized); accumulates into [B[3]] *)
  | Escape of expr
      (** Figure-3 cross-thread escape via global [P]; accumulates into
          [B[4]].  Renders as a same-thread [Local] in generic mode. *)

type prog = { outer : int;  (** outer trip count *) stmts : stmt list }

(** The execution-mode dimension of the differential matrix. *)
type mode = Generic | Spmd

val modes : mode list
(** [[Generic; Spmd]], the matrix order. *)

val mode_name : mode -> string

val arr_lens : int list
(** The [Local_arr] shapes the generator draws from (words). *)

val has_escape : prog -> bool
val has_local_arr : prog -> bool

val has_nested : prog -> bool
(** The program contains an inner [parallel for] — raw CUDA semantics
    cannot serialize nested OpenMP worksharing (see {!Matrix.classify}'s
    ["cuda-nested-worksharing"] class). *)

val generate : Splitmix.t -> prog
(** Draw one program.  Equal streams draw equal programs. *)

val program_stream : root:int64 -> int -> Splitmix.t
(** The stream program [i] of a corpus rooted at [root] is drawn from:
    [Splitmix.split (create root) "prog#i"].  Stable — ledgers and
    reproduction instructions name programs by [(root, i)]. *)

val render : mode:mode -> prog -> string
(** MiniOMP source of the program in the given execution mode. *)

val shrink : prog -> (prog -> unit) -> unit
(** Greedy shrink candidates, most aggressive first: drop a statement,
    reset the trip count, demote an [Escape]/[Local_arr] to a plain
    atomic, shrink an array shape, replace a sub-expression by a
    constant.  Callers keep a candidate only if it still fails. *)

val pp : Format.formatter -> prog -> unit
(** Both renderings, labeled — what failure reports print. *)

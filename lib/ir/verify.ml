(* Module verifier: structural well-formedness plus a type check.  Run by
   tests after every front-end lowering and every optimizer pass. *)

module SM = Support.Util.String_map
module IM = Support.Util.Int_map

exception Invalid of string

let fail fmt = Fmt.kstr (fun s -> raise (Invalid s)) fmt

(* Build the register typing environment of a function.  Every register is
   defined by exactly one instruction, so a single scan suffices. *)
let reg_types (f : Func.t) =
  Func.fold_instrs f ~init:IM.empty ~g:(fun env _ i ->
      if IM.mem i.Instr.id env then fail "%s: register %%%d defined twice" f.name i.Instr.id;
      IM.add i.Instr.id (Instr.result_ty i) env)

let value_ty (m : Irmod.t) (f : Func.t) env v =
  match v with
  | Value.Const c -> Value.const_ty c
  | Value.Reg id -> (
    match IM.find_opt id env with
    | Some ty -> ty
    | None -> fail "%s: use of undefined register %%%d" f.name id)
  | Value.Arg i -> Func.param_ty f i
  | Value.Global name -> (
    match Irmod.find_global m name with
    | Some g -> Types.Ptr g.Irmod.gspace
    | None -> fail "%s: use of undefined global @%s" f.name name)
  | Value.Func name -> (
    match Irmod.find_func m name with
    | Some _ -> Types.Ptr Types.Generic
    | None -> fail "%s: use of undefined function @%s" f.name name)

let check_ty f what expected actual =
  if not (Types.equal expected actual) then
    fail "%s: %s has type %a, expected %a" f.Func.name what Types.pp actual Types.pp expected

let check_pointer f what ty =
  if not (Types.is_pointer ty) then
    fail "%s: %s must be a pointer, got %a" f.Func.name what Types.pp ty

let check_instr m f env (i : Instr.t) =
  let vty v = value_ty m f env v in
  match i.Instr.kind with
  | Alloca (ty, n) ->
    if n <= 0 then fail "%s: alloca with non-positive count" f.Func.name;
    if Types.equal ty Types.Void then fail "%s: alloca of void" f.Func.name
  | Load (ty, p) ->
    check_pointer f "load source" (vty p);
    if Types.equal ty Types.Void then fail "%s: load of void" f.Func.name
  | Store (ty, v, p) ->
    check_pointer f "store target" (vty p);
    check_ty f "stored value" ty (vty v)
  | Gep (ty, base, off) ->
    check_pointer f "gep result" ty;
    check_pointer f "gep base" (vty base);
    check_ty f "gep offset" Types.I64 (vty off)
  | Bin (op, ty, a, b) ->
    check_ty f "binop lhs" ty (vty a);
    check_ty f "binop rhs" ty (vty b);
    let is_float_op = match op with Fadd | Fsub | Fmul | Fdiv -> true | _ -> false in
    if is_float_op && not (Types.is_float ty) then
      fail "%s: float binop on %a" f.Func.name Types.pp ty;
    if (not is_float_op) && not (Types.is_integer ty) then
      fail "%s: integer binop on %a" f.Func.name Types.pp ty
  | Icmp (_, ty, a, b) ->
    check_ty f "icmp lhs" ty (vty a);
    check_ty f "icmp rhs" ty (vty b);
    if not (Types.is_integer ty || Types.is_pointer ty) then
      fail "%s: icmp on %a" f.Func.name Types.pp ty
  | Fcmp (_, ty, a, b) ->
    check_ty f "fcmp lhs" ty (vty a);
    check_ty f "fcmp rhs" ty (vty b);
    if not (Types.is_float ty) then fail "%s: fcmp on %a" f.Func.name Types.pp ty
  | Cast (op, to_ty, v) -> (
    let from_ty = vty v in
    match op with
    | Zext | Sext ->
      if not (Types.is_integer from_ty && Types.is_integer to_ty) then
        fail "%s: int cast between %a and %a" f.Func.name Types.pp from_ty Types.pp to_ty
    | Trunc ->
      if not (Types.is_integer from_ty && Types.is_integer to_ty) then
        fail "%s: trunc between %a and %a" f.Func.name Types.pp from_ty Types.pp to_ty
    | Sitofp ->
      if not (Types.is_integer from_ty && Types.is_float to_ty) then
        fail "%s: sitofp between %a and %a" f.Func.name Types.pp from_ty Types.pp to_ty
    | Fptosi ->
      if not (Types.is_float from_ty && Types.is_integer to_ty) then
        fail "%s: fptosi between %a and %a" f.Func.name Types.pp from_ty Types.pp to_ty
    | Fpext | Fptrunc ->
      if not (Types.is_float from_ty && Types.is_float to_ty) then
        fail "%s: float cast between %a and %a" f.Func.name Types.pp from_ty Types.pp to_ty
    | Bitcast ->
      if Types.size_of from_ty <> Types.size_of to_ty then
        fail "%s: bitcast changes size" f.Func.name
    | Spacecast ->
      if not (Types.is_pointer from_ty && Types.is_pointer to_ty) then
        fail "%s: spacecast between %a and %a" f.Func.name Types.pp from_ty Types.pp to_ty)
  | Select (ty, c, a, b) ->
    check_ty f "select condition" Types.I1 (vty c);
    check_ty f "select lhs" ty (vty a);
    check_ty f "select rhs" ty (vty b)
  | Call (ret_ty, Direct name, args) -> (
    match Irmod.find_func m name with
    | None -> fail "%s: call to undefined function @%s" f.Func.name name
    | Some callee ->
      check_ty f (Printf.sprintf "call to @%s" name) callee.Func.ret_ty ret_ty;
      let nparams = List.length callee.Func.params in
      if List.length args <> nparams then
        fail "%s: call to @%s with %d args, expected %d" f.Func.name name (List.length args)
          nparams;
      List.iteri
        (fun idx arg ->
          check_ty f
            (Printf.sprintf "argument %d of @%s" idx name)
            (Func.param_ty callee idx) (vty arg))
        args)
  | Call (_, Indirect fn, _) -> check_pointer f "indirect callee" (vty fn)
  | Atomicrmw (_, ty, p, v) ->
    check_pointer f "atomicrmw pointer" (vty p);
    check_ty f "atomicrmw operand" ty (vty v)

let check_term m f env b =
  let vty v = value_ty m f env v in
  match b.Block.term with
  | Ret None ->
    if not (Types.equal f.Func.ret_ty Types.Void) then
      fail "%s: ret void in non-void function" f.Func.name
  | Ret (Some v) -> check_ty f "return value" f.Func.ret_ty (vty v)
  | Br l -> if Func.find_block f l = None then fail "%s: branch to unknown %s" f.Func.name l
  | Cbr (v, l1, l2) ->
    check_ty f "branch condition" Types.I1 (vty v);
    List.iter
      (fun l -> if Func.find_block f l = None then fail "%s: branch to unknown %s" f.Func.name l)
      [ l1; l2 ]
  | Switch (v, cases, d) ->
    if not (Types.is_integer (vty v)) then fail "%s: switch on non-integer" f.Func.name;
    List.iter
      (fun l -> if Func.find_block f l = None then fail "%s: switch to unknown %s" f.Func.name l)
      (d :: List.map snd cases)
  | Unreachable -> ()

(* Defs must dominate uses.  Within a block: textual order; across blocks:
   the defining block must dominate the using block. *)
let check_dominance (f : Func.t) =
  let cfg = Cfg.compute f in
  let dom = Cfg.dominators cfg in
  (* def site of each register: (block label, index in block) *)
  let defs = Hashtbl.create 64 in
  List.iter
    (fun b ->
      List.iteri
        (fun idx i -> if Instr.has_result i then Hashtbl.replace defs i.Instr.id (b.Block.label, idx))
        b.Block.instrs)
    f.blocks;
  let check_use ulabel uidx v =
    match v with
    | Value.Reg id -> (
      match Hashtbl.find_opt defs id with
      | None -> fail "%s: use of register %%%d with no definition" f.name id
      | Some (dlabel, didx) ->
        let ok =
          if String.equal dlabel ulabel then didx < uidx
          else Cfg.dominates dom ~by:dlabel ulabel
        in
        if ok || not (Cfg.is_reachable cfg ulabel) then ()
        else
          fail "%s: use of %%%d in %s not dominated by its definition in %s" f.name id ulabel
            dlabel)
    | _ -> ()
  in
  List.iter
    (fun b ->
      List.iteri
        (fun idx i -> List.iter (check_use b.Block.label idx) (Instr.operands i))
        b.Block.instrs;
      List.iter
        (check_use b.Block.label (List.length b.Block.instrs))
        (Block.term_operands b.Block.term))
    f.blocks

let verify_func m (f : Func.t) =
  if Func.is_declaration f then ()
  else begin
    let labels = List.map (fun b -> b.Block.label) f.blocks in
    let sorted = List.sort_uniq String.compare labels in
    if List.length sorted <> List.length labels then
      fail "%s: duplicate block labels" f.name;
    let env = reg_types f in
    List.iter
      (fun b ->
        List.iter (check_instr m f env) b.Block.instrs;
        check_term m f env b)
      f.blocks;
    check_dominance f
  end

let verify_module (m : Irmod.t) =
  let names = List.map (fun f -> f.Func.name) m.funcs in
  let sorted = List.sort_uniq String.compare names in
  if List.length sorted <> List.length names then fail "module: duplicate function names";
  List.iter (verify_func m) m.funcs

(* Convenience wrapper returning a result instead of raising. *)
let check m = match verify_module m with () -> Ok () | exception Invalid msg -> Error msg

(** CFG utilities over a function: predecessors, reverse post-order,
    reachability, and iterative dominators. *)

type t = {
  func : Func.t;
  order : string list;  (** reverse post-order from the entry block *)
  preds : string list Support.Util.String_map.t;
  succs : string list Support.Util.String_map.t;
}

val compute : Func.t -> t
(** @raise Failure on declarations or branches to unknown blocks. *)

val reachable : t -> Support.Util.String_set.t
val is_reachable : t -> string -> bool
val preds : t -> string -> string list
val succs : t -> string -> string list

val dominators : t -> Support.Util.String_set.t Support.Util.String_map.t
(** [dominators t] maps each reachable label to its dominator set
    (including itself). *)

val dominates : Support.Util.String_set.t Support.Util.String_map.t -> by:string -> string -> bool
(** [dominates dom ~by l]: does block [by] dominate block [l]? *)

val blocks_in_order : t -> Block.t list
(** Reachable blocks in reverse post-order. *)

val prune_unreachable : Func.t -> bool
(** Delete blocks unreachable from entry; true if anything changed. *)

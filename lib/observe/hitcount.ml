(* Per-key hit counters (see the .mli). *)

type t = {
  mutex : Mutex.t;
  table : (string, int) Hashtbl.t;
  max_keys : int option;
  mutable decays : int;
}

let create ?max_keys () =
  {
    mutex = Mutex.create ();
    table = Hashtbl.create 64;
    max_keys = Option.map (max 1) max_keys;
    decays = 0;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Decay-on-overflow: halve every count, dropping the ones that reach
   zero.  One pass always removes every count-1 key (there is at least
   one whenever the table just grew past the cap by a fresh bump), so the
   loop terminates; hot keys keep their relative order, cold ones age
   out — the classic frequency-decay sketch. *)
let rec decay_locked t =
  match t.max_keys with
  | Some cap when Hashtbl.length t.table > cap ->
    t.decays <- t.decays + 1;
    let dead =
      Hashtbl.fold
        (fun k n acc ->
          let n' = n / 2 in
          if n' = 0 then k :: acc
          else begin
            Hashtbl.replace t.table k n';
            acc
          end)
        t.table []
    in
    List.iter (Hashtbl.remove t.table) dead;
    decay_locked t
  | _ -> ()

let bump t key =
  with_lock t (fun () ->
      let n = 1 + Option.value (Hashtbl.find_opt t.table key) ~default:0 in
      Hashtbl.replace t.table key n;
      decay_locked t;
      n)

let count t key =
  with_lock t (fun () -> Option.value (Hashtbl.find_opt t.table key) ~default:0)

let distinct t = with_lock t (fun () -> Hashtbl.length t.table)

let total t =
  with_lock t (fun () -> Hashtbl.fold (fun _ n acc -> acc + n) t.table 0)

let decays t = with_lock t (fun () -> t.decays)

let top ?(n = 10) t =
  with_lock t (fun () ->
      let all = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table [] in
      let sorted =
        (* count descending, key ascending for a deterministic order *)
        List.sort
          (fun (ka, va) (kb, vb) ->
            match compare vb va with 0 -> compare ka kb | c -> c)
          all
      in
      List.filteri (fun i _ -> i < n) sorted)

(* ------------------------------------------------------------------ *)
(* Persistent profile                                                  *)
(* ------------------------------------------------------------------ *)

(* Format version of the saved profile, independent of the JSON schema
   stamp: a daemon must never trust counts whose meaning changed. *)
let profile_version = 1

let to_json t =
  with_lock t (fun () ->
      let counts =
        List.sort compare
          (Hashtbl.fold (fun k v acc -> (k, Json.Int v) :: acc) t.table [])
      in
      Json.with_schema
        (Json.Obj [ ("hv", Json.Int profile_version); ("counts", Json.Obj counts) ]))

let counts_of_json j =
  match Option.bind (Json.member "hv" j) Json.to_int with
  | Some v when v = profile_version -> (
    match Json.member "counts" j with
    | Some (Json.Obj members) ->
      Some
        (List.filter_map
           (fun (k, v) ->
             match Json.to_int v with
             | Some n when n > 0 -> Some (k, n)
             | _ -> None)
           members)
    | _ -> None)
  | _ -> None

(* Atomic, never-raising save: the profile is an optimization, exactly
   like a disk-cache entry — losing it costs re-warming, never a boot. *)
let save t ~path =
  let doc = Json.to_string ~minify:true (to_json t) ^ "\n" in
  match
    let dir = Filename.dirname path in
    let tmp = Filename.temp_file ~temp_dir:dir "hotness" ".tmp" in
    match
      Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc doc);
      Sys.rename tmp path
    with
    | () -> ()
    | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e
  with
  | () -> true
  | exception (Sys_error _ | Unix.Unix_error _) -> false

(* Merge the saved counts in (keeping any live ones), so a profile can be
   restored into a warm table; unreadable, unparseable or wrong-version
   files restore nothing.  Returns how many keys were restored. *)
let load_into t ~path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ -> 0
  | raw -> (
    match Json.of_string (String.trim raw) with
    | Error _ -> 0
    | Ok j -> (
      match counts_of_json j with
      | None -> 0
      | Some counts ->
        with_lock t (fun () ->
            List.iter
              (fun (k, n) ->
                let live =
                  Option.value (Hashtbl.find_opt t.table k) ~default:0
                in
                Hashtbl.replace t.table k (live + n))
              counts;
            decay_locked t;
            List.length counts)))

(* Call graph over a MiniIR module.

   Indirect call sites conservatively point at every address-taken function;
   this pessimism is what inflates register-pressure estimates for kernels
   with function-pointer state machines, and what the custom state machine
   rewrite removes (Section IV-B.2 of the paper). *)

module SM = Support.Util.String_map
module SS = Support.Util.String_set

open Ir

type t = {
  m : Irmod.t;
  callees : SS.t SM.t;  (* function -> possible direct+indirect callees *)
  callers : SS.t SM.t;
  has_indirect_site : SS.t;  (* functions containing an indirect call *)
  address_taken : SS.t;
}

let empty_to name m = match SM.find_opt name m with Some s -> s | None -> SS.empty

let compute (m : Irmod.t) =
  let address_taken =
    SS.of_list (List.map (fun f -> f.Func.name) (Irmod.address_taken_funcs m))
  in
  let callees = ref SM.empty in
  let callers = ref SM.empty in
  let has_indirect_site = ref SS.empty in
  let add_edge from into =
    callees := SM.add from (SS.add into (empty_to from !callees)) !callees;
    callers := SM.add into (SS.add from (empty_to into !callers)) !callers
  in
  List.iter
    (fun f ->
      let fname = f.Func.name in
      callees := SM.add fname (empty_to fname !callees) !callees;
      Func.iter_instrs f ~g:(fun _ i ->
          match i.Instr.kind with
          | Instr.Call (_, Instr.Direct callee, args) ->
            add_edge fname callee;
            (* a function passed as an argument to a direct call may be
               invoked by the callee: add a conservative edge too *)
            List.iter
              (fun v -> match v with Value.Func g -> add_edge fname g | _ -> ())
              args
          | Instr.Call (_, Instr.Indirect _, _) ->
            has_indirect_site := SS.add fname !has_indirect_site;
            SS.iter (fun target -> add_edge fname target) address_taken
          | _ -> ()))
    (Irmod.defined_funcs m);
  { m; callees = !callees; callers = !callers;
    has_indirect_site = !has_indirect_site; address_taken }

let callees t name = empty_to name t.callees
let callers t name = empty_to name t.callers
let is_address_taken t name = SS.mem name t.address_taken

(* Transitive closure of callees from a set of roots (roots included). *)
let reachable_from t roots =
  let seen = ref SS.empty in
  let rec visit n =
    if not (SS.mem n !seen) then begin
      seen := SS.add n !seen;
      SS.iter visit (callees t n)
    end
  in
  List.iter visit roots;
  !seen

(* For every function, the set of kernels that may (transitively) reach it.
   Used by runtime-call folding: a query can be folded only if all reaching
   kernels agree on the answer. *)
let reaching_kernels t =
  let result = ref SM.empty in
  List.iter
    (fun k ->
      let kname = k.Func.name in
      SS.iter
        (fun f -> result := SM.add f (SS.add kname (empty_to f !result)) !result)
        (reachable_from t [ kname ]))
    (Irmod.kernels t.m);
  !result

(* Strongly connected components in reverse topological order (callees before
   callers), via Tarjan's algorithm.  The optimizer runs late passes per SCC,
   mirroring the paper's pass scheduling. *)
let sccs t =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let defined = List.map (fun f -> f.Func.name) (Irmod.defined_funcs t.m) in
  let defined_set = SS.of_list defined in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    SS.iter
      (fun w ->
        if SS.mem w defined_set then
          if not (Hashtbl.mem index w) then begin
            strongconnect w;
            Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
          end
          else if Hashtbl.find_opt on_stack w = Some true then
            Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (callees t v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.replace on_stack w false;
          if String.equal w v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) defined;
  List.rev !components

(* Custom state machine rewrite (Section IV-B.2): eliminate the function
   pointers used to communicate parallel regions to the workers.

   For a generic-mode kernel whose reachable parallel regions are all known
   statically, the worker loop's indirect dispatch is replaced with an
   if-cascade comparing a region id delivered by __kmpc_worker_wait_id
   against the statically assigned ids, calling each region directly.  When
   unknown regions may reach the kernel (indirect calls or calls into
   external code), an indirect fallback via __kmpc_get_parallel_fn remains
   and a remark is issued. *)

open Ir
module SS = Support.Util.String_set
(* stable identifier used by the Observe trace layer *)
let pass_name = "state-machine"

type outcome =
  | Rewritten of { regions : int; fallback : bool }
  | No_state_machine  (* SPMD kernel, or the pattern was not found *)
  | Unknown_regions of string

let gptr = Types.Ptr Types.Generic

(* Find the worker state machine blocks by pattern: the await block contains
   the __kmpc_worker_wait call and ends in cbr(exit, dispatch). *)
let find_state_machine (kernel : Func.t) =
  List.find_map
    (fun b ->
      let wait =
        List.find_opt
          (fun (i : Instr.t) ->
            match i.Instr.kind with
            | Instr.Call (_, Instr.Direct "__kmpc_worker_wait", _) -> true
            | _ -> false)
          b.Block.instrs
      in
      match (wait, b.Block.term) with
      | Some wait, Block.Cbr (_, exit_l, dispatch_l) -> Some (b, wait, exit_l, dispatch_l)
      | _ -> None)
    kernel.Func.blocks

(* All parallel_51 call sites in functions reachable from [kernel], plus
   whether unknown parallel regions may exist (external callees, indirect
   calls outside the state machine, or non-constant region functions). *)
let gather_regions (m : Irmod.t) cg (kernel : Func.t) ~dispatch_label =
  let reachable = Analysis.Callgraph.reachable_from cg [ kernel.Func.name ] in
  let regions = ref [] in
  let unknown = ref None in
  SS.iter
    (fun fname ->
      match Irmod.find_func m fname with
      | None -> ()
      | Some f when Func.is_declaration f ->
        (* the OpenMP 5.1 omp_no_openmp assumption guarantees the callee
           contains no OpenMP constructs, hence no parallel regions *)
        if
          (not (Devrt.Registry.is_runtime_fn fname))
          && not (Func.has_attr f Func.No_openmp)
        then
          unknown := Some (Printf.sprintf "external function @%s may contain parallel regions" fname)
      | Some f ->
        Func.iter_instrs f ~g:(fun b i ->
            match i.Instr.kind with
            | Instr.Call (_, Instr.Direct "__kmpc_parallel_51", args) -> (
              match args with
              | Value.Func region :: _ ->
                if not (List.mem region !regions) then regions := region :: !regions
              | _ -> unknown := Some "parallel region with a non-constant function")
            | Instr.Call (_, Instr.Indirect _, _)
              when not
                     (String.equal f.Func.name kernel.Func.name
                     && String.equal b.Block.label dispatch_label) ->
              unknown := Some (Printf.sprintf "indirect call in @%s" fname)
            | _ -> ()))
    reachable;
  (List.rev !regions, !unknown)

(* Rewrite the parallel_51 call sites of the given regions to carry their
   assigned ids. *)
let assign_ids (m : Irmod.t) region_ids =
  List.iter
    (fun f ->
      Func.iter_instrs f ~g:(fun _ i ->
          match i.Instr.kind with
          | Instr.Call (ty, Instr.Direct "__kmpc_parallel_51",
                        (Value.Func region :: _ :: rest)) -> (
            match List.assoc_opt region region_ids with
            | Some id ->
              i.Instr.kind <-
                Instr.Call
                  (ty, Instr.Direct "__kmpc_parallel_51",
                   Value.Func region :: Value.i64 (Int64.to_int id) :: rest)
            | None -> ())
          | _ -> ()))
    (Irmod.defined_funcs m)

let rewrite_kernel (m : Irmod.t) cg (sink : Remark.sink) (kernel : Func.t) =
  match kernel.Func.kernel with
  | None | Some { Func.exec_mode = Func.Spmd; _ } -> No_state_machine
  | Some { Func.exec_mode = Func.Generic; _ } -> (
    match find_state_machine kernel with
    | None -> No_state_machine
    | Some (await_bb, wait_instr, exit_l, dispatch_l) -> (
      let regions, unknown = gather_regions m cg kernel ~dispatch_label:dispatch_l in
      match (regions, unknown) with
      | [], None ->
        (* no parallel regions at all: nothing for workers to do *)
        Remark.emit sink (Remark.make ~loc:kernel.Func.loc ~func:kernel.Func.name 133);
        No_state_machine
      | _ -> (
        match unknown with
        | Some reason when regions = [] ->
          Remark.emit sink
            (Remark.make ~kind:Remark.Missed ~loc:kernel.Func.loc
               ~func:kernel.Func.name 150 ~detail:reason);
          Unknown_regions reason
        | _ ->
          let fallback = unknown <> None in
          let region_ids = List.mapi (fun idx r -> (r, Int64.of_int idx)) regions in
          assign_ids m region_ids;
          let await_label = await_bb.Block.label in
          (* rewrite the await block: wait for an id instead of a pointer *)
          let id_reg = wait_instr.Instr.id in
          wait_instr.Instr.kind <-
            Instr.Call (Types.I64, Instr.Direct "__kmpc_worker_wait_id", []);
          let term_cmp = Func.fresh_reg kernel in
          (* replace the null-check icmp: find it (it uses the wait result) *)
          await_bb.Block.instrs <-
            List.map
              (fun (i : Instr.t) ->
                match i.Instr.kind with
                | Instr.Icmp (_, _, Value.Reg r, _) when r = id_reg ->
                  Instr.make ~id:i.Instr.id
                    (Instr.Icmp (Instr.Eq, Types.I64, Value.Reg id_reg, Value.i64 (-2)))
                | _ -> i)
              await_bb.Block.instrs;
          ignore term_cmp;
          (* build the if-cascade, replacing the old dispatch block *)
          let cascade_labels =
            List.mapi
              (fun idx _ -> Printf.sprintf "%s.case%d" dispatch_l idx)
              regions
          in
          let call_labels =
            List.mapi (fun idx _ -> Printf.sprintf "%s.call%d" dispatch_l idx) regions
          in
          let fallback_label = dispatch_l ^ ".fallback" in
          let next_label idx =
            if idx + 1 < List.length regions then List.nth cascade_labels (idx + 1)
            else if fallback then fallback_label
            else dispatch_l ^ ".nowork"
          in
          (* dispatch_l itself becomes the first cascade test *)
          let blocks = ref [] in
          List.iteri
            (fun idx region ->
              let test_label =
                if idx = 0 then dispatch_l else List.nth cascade_labels idx
              in
              let cmp = Func.fresh_reg kernel in
              let test_bb =
                Block.make test_label
                  ~instrs:
                    [
                      Instr.make ~id:cmp
                        (Instr.Icmp
                           (Instr.Eq, Types.I64, Value.Reg id_reg,
                            Value.i64 (Int64.to_int (List.assoc region region_ids))));
                    ]
                  ~term:(Block.Cbr (Value.Reg cmp, List.nth call_labels idx, next_label idx))
              in
              let args_reg = Func.fresh_reg kernel in
              (* every cascade leaf signals region completion itself *)
              let call_bb =
                Block.make (List.nth call_labels idx)
                  ~instrs:
                    [
                      Instr.make ~id:args_reg
                        (Instr.Call (gptr, Instr.Direct "__kmpc_get_parallel_args", []));
                      Instr.make ~id:(Func.fresh_reg kernel)
                        (Instr.Call (Types.Void, Instr.Direct region, [ Value.Reg args_reg ]));
                      Instr.make ~id:(Func.fresh_reg kernel)
                        (Instr.Call (Types.Void, Instr.Direct "__kmpc_worker_done", []));
                    ]
                  ~term:(Block.Br await_label)
              in
              blocks := call_bb :: test_bb :: !blocks)
            regions;
          (* fallback or no-work termination *)
          if fallback then begin
            let fn_reg = Func.fresh_reg kernel in
            let args_reg = Func.fresh_reg kernel in
            let fb =
              Block.make fallback_label
                ~instrs:
                  [
                    Instr.make ~id:fn_reg
                      (Instr.Call (gptr, Instr.Direct "__kmpc_get_parallel_fn", []));
                    Instr.make ~id:args_reg
                      (Instr.Call (gptr, Instr.Direct "__kmpc_get_parallel_args", []));
                    Instr.make ~id:(Func.fresh_reg kernel)
                      (Instr.Call (Types.Void, Instr.Indirect (Value.Reg fn_reg),
                                   [ Value.Reg args_reg ]));
                    Instr.make ~id:(Func.fresh_reg kernel)
                      (Instr.Call (Types.Void, Instr.Direct "__kmpc_worker_done", []));
                  ]
                ~term:(Block.Br await_label)
            in
            blocks := fb :: !blocks
          end
          else begin
            let nw =
              Block.make (dispatch_l ^ ".nowork")
                ~instrs:
                  [
                    Instr.make ~id:(Func.fresh_reg kernel)
                      (Instr.Call (Types.Void, Instr.Direct "__kmpc_worker_done", []));
                  ]
                ~term:(Block.Br await_label)
            in
            blocks := nw :: !blocks
          end;
          (* splice: drop the old dispatch block, add the new ones *)
          Func.remove_blocks kernel [ dispatch_l ];
          List.iter (fun b -> Func.add_block kernel b) (List.rev !blocks);
          (* the exit branch target is unchanged *)
          ignore exit_l;
          Remark.emit sink
            (Remark.make ~loc:kernel.Func.loc ~func:kernel.Func.name
               (if fallback then 132 else 130));
          if fallback then
            Remark.emit sink
              (Remark.make ~kind:Remark.Analysis ~loc:kernel.Func.loc
                 ~func:kernel.Func.name 131);
          Rewritten { regions = List.length regions; fallback })))

let run (m : Irmod.t) (sink : Remark.sink) =
  let cg = Analysis.Callgraph.compute m in
  let rewritten = ref 0 in
  let fallbacks = ref 0 in
  List.iter
    (fun k ->
      match rewrite_kernel m cg sink k with
      | Rewritten { fallback; _ } ->
        incr rewritten;
        if fallback then incr fallbacks
      | No_state_machine | Unknown_regions _ -> ())
    (Irmod.kernels m);
  (!rewritten, !fallbacks)

(** The compile-fleet front-end: one socket, N supervised daemon shards.

    [mompd route] grows the single supervised daemon (PR 5) into a fleet:
    each shard is a full {!Supervisor}+{!Journal}+{!Server} stack on its
    own socket and state directory, and the router is the only address
    clients see.  Requests are sharded by {!Ompgpu_api.cache_key} over a
    consistent-hash {!Ring}, so a given (file, config, source) always
    lands on the same shard and each shard's warm in-memory cache stays
    hot and disjoint; all shards share one content-addressed disk tier
    ([--cache-dir]), so a failover miss is usually still a disk hit.

    {b Byte-identity.}  The router never re-encodes a compile: it parses
    a {e copy} of the request line for routing (key, tenant) and relays
    the client's original bytes to the shard, then relays the shard's
    response line back verbatim.  A reply routed through the fleet is
    byte-identical to one from a lone daemon, which is byte-identical to
    [mompc] — the invariant every layer above relies on.

    {b Health.}  A prober thread drives each shard through a state
    machine ([up] → [degraded] → [down]) on consecutive health-probe
    failures, and a monitor thread respawns dead shards with the
    supervisor's own jittered backoff.  A shard that needs more than
    [max_respawns] respawns inside [respawn_window_s] is {e ejected} —
    taken out of the ring's candidate set — and re-admitted (as [down],
    to be probed back up) after [eject_cooldown_s].

    {b Failover.}  A request whose primary shard is down walks the ring's
    preference order to the next live shard — cold for that key but
    correct, and usually warm from the shared disk tier.  When every
    shard is unreachable (or sheds), the router compiles in-process
    ({!Ompgpu_api.compile_buffered}) — byte-identical by construction —
    so a client never sees a transport failure the fleet could absorb:
    kill -9 a shard under load and every in-flight request still settles
    with the right bytes.

    {b Admission.}  A per-tenant fair queue sits in front of the shards'
    own overload shed: each tenant's in-flight share is bounded by
    [capacity / active_tenants] (at least 1), excess waits briefly for
    capacity, and only a wait that outlives [queue_deadline_s] is shed
    with the structured [Overload] clients already know how to retry.  A
    greedy tenant cannot starve a quiet one. *)

(** One shard as the router drives it: how to (re)start and stop it, and
    how to observe liveness.  A record, not a class, so tests can build
    deliberately flaky backends.  [start] must be safe to call again
    after the process/thread behind it died (that is the respawn path);
    [alive] is polled only from the router's monitor thread, so a
    [waitpid]-based implementation needs no locking. *)
type backend = {
  name : string;  (** stable shard name; the ring hashes it *)
  socket_path : string;  (** where the shard's server listens *)
  start : unit -> unit;
  stop : unit -> unit;
  alive : unit -> bool;
  pid : unit -> int option;  (** subprocess shards report their pid *)
}

val inproc_backend : Supervisor.config -> name:string -> backend
(** A shard running as a supervisor on a thread inside this process —
    what tests, benches and the corpus driver use ([kill -9] scenarios
    need [mompd route]'s subprocess shards instead).  [alive] is true
    while the supervisor loop runs; [start] spawns a fresh thread. *)

(** Per-tenant fair-queue admission, exposed for deterministic tests. *)
module Admission : sig
  type t

  type outcome =
    | Admitted
    | Shed of { pending : int; capacity : int }
        (** the wait outlived the queue deadline *)

  val create : capacity:int -> queue_deadline_s:float -> t

  val acquire : t -> tenant:string -> outcome
  (** Block (bounded by the queue deadline) until the tenant may hold one
      more in-flight request: total in-flight below [capacity] {e and}
      this tenant below its share, [max 1 (capacity / active_tenants)]
      where a tenant is active while it has requests in flight or
      waiting.  Fairness over raw throughput: a tenant pinned at its
      share leaves headroom the moment a second tenant shows up. *)

  val release : t -> tenant:string -> unit
  (** Return the slot taken by a successful [acquire]. *)

  val in_flight : t -> int
end

type config = {
  socket_path : string;  (** the router's own listening socket *)
  capacity : int;  (** fleet-wide admitted-compile bound *)
  queue_deadline_s : float;  (** max fair-queue wait before shedding *)
  relay_deadline_s : float;  (** per-request socket deadline to a shard *)
  probe_interval_s : float;
  probe_deadline_s : float;
  degraded_after : int;  (** consecutive probe failures → [degraded] *)
  down_after : int;  (** consecutive probe failures → [down] *)
  max_respawns : int;  (** respawns tolerated per window before ejection *)
  respawn_window_s : float;
  eject_cooldown_s : float;
  vnodes : int;  (** ring points per shard *)
  injector : Fault.Injector.t;
      (** arms [shard-down], [probe-timeout] and [ring-skew] *)
  log : string -> unit;
}

val default_config : config
(** [./mompd-router.sock]; capacity 16; 250ms queue deadline; 30s relay
    deadline; probes every 200ms with a 1s deadline, degraded after 1
    failure, down after 2; 3 respawns per 10s window, 2s ejection
    cooldown; {!Ring.default_vnodes}; no faults; silent log. *)

type t

val create : config -> backend list -> t
(** Bind the router's socket, build the ring over the backends' names,
    and [start] every backend.  Shards boot as [down] and are probed up.
    Raises [Invalid_argument] on an empty backend list, [Unix.Unix_error]
    if the socket cannot be bound. *)

val serve_forever : t -> unit
(** Run the prober, the monitor and the accept loop until a [shutdown]
    request or {!stop}; then stop every backend and release the socket. *)

val stop : t -> unit
(** Idempotent; safe from a signal handler. *)

val run : config -> backend list -> unit
(** [create] + [serve_forever]. *)

val fleet_json : t -> Observe.Json.t
(** The fleet document served to a [fleet] request (schema 2): the ring
    shape, the router's own counters (routed, failovers, in-process
    fallbacks, quota sheds), and one entry per shard — name, socket, pid,
    health state, probe/respawn counters, and the shard's live [stats]
    document when it is reachable.  docs/FLEET.md and docs/API.md
    specify the members; test/test_fleet.ml pins them. *)

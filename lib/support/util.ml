(* Small utilities shared across the libraries. *)

(* Fresh integer ids, one counter per generator. *)
module Id_gen = struct
  type t = { mutable next : int }

  let create () = { next = 0 }

  let fresh t =
    let id = t.next in
    t.next <- t.next + 1;
    id

  let reserve t n = if n >= t.next then t.next <- n + 1
end

module String_map = Map.Make (String)
module String_set = Set.Make (String)
module Int_map = Map.Make (Int)
module Int_set = Set.Make (Int)

let round_up_to value ~multiple =
  if multiple <= 0 then invalid_arg "round_up_to";
  (value + multiple - 1) / multiple * multiple

(* [take_drop n xs] splits off the first [n] elements of [xs]. *)
let take_drop n xs =
  let rec loop acc n = function
    | rest when n = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> loop (x :: acc) (n - 1) rest
  in
  loop [] n xs

let list_sum f xs = List.fold_left (fun acc x -> acc + f x) 0 xs

let list_max_opt f = function
  | [] -> None
  | x :: xs -> Some (List.fold_left (fun acc y -> max acc (f y)) (f x) xs)

(* Topological-ish fixpoint driver: iterate [step] until it reports no change
   or [max_iters] is exceeded (which signals a bug in a monotone analysis). *)
let fixpoint ?(max_iters = 10_000) step =
  let rec loop i =
    if i > max_iters then failwith "Util.fixpoint: did not converge";
    if step () then loop (i + 1)
  in
  loop 0

let failf fmt = Fmt.kstr failwith fmt

(* MiniIR instructions.  Each instruction has a function-unique id; its result
   (if any) is referenced as [Value.Reg id].  Kinds are mutable so that the
   optimizer can rewrite instructions in place without invalidating uses. *)

type bin =
  | Add | Sub | Mul | Sdiv | Srem | Udiv | Urem
  | And | Or | Xor | Shl | Lshr | Ashr
  | Fadd | Fsub | Fmul | Fdiv

type icmp = Eq | Ne | Slt | Sle | Sgt | Sge | Ult | Ule | Ugt | Uge
type fcmp = Oeq | One | Olt | Ole | Ogt | Oge

type cast = Zext | Sext | Trunc | Sitofp | Fptosi | Fpext | Fptrunc | Bitcast | Spacecast

type atomic = A_add | A_fadd | A_min | A_max | A_exchange | A_cas

type callee = Direct of string | Indirect of Value.t

type kind =
  | Alloca of Types.t * int  (* element type, element count; yields ptr(local) *)
  | Load of Types.t * Value.t
  | Store of Types.t * Value.t * Value.t  (* type, value, pointer *)
  | Gep of Types.t * Value.t * Value.t  (* result ptr type, base ptr, byte offset (i64) *)
  | Bin of bin * Types.t * Value.t * Value.t
  | Icmp of icmp * Types.t * Value.t * Value.t  (* operand type *)
  | Fcmp of fcmp * Types.t * Value.t * Value.t
  | Cast of cast * Types.t * Value.t  (* destination type *)
  | Select of Types.t * Value.t * Value.t * Value.t
  | Call of Types.t * callee * Value.t list  (* return type *)
  | Atomicrmw of atomic * Types.t * Value.t * Value.t  (* op, value type, ptr, operand *)

type t = { id : int; mutable kind : kind; mutable loc : Support.Loc.t }

let make ?(loc = Support.Loc.none) ~id kind = { id; kind; loc }

let result_ty i =
  match i.kind with
  | Alloca _ -> Types.Ptr Types.Local
  | Load (ty, _) -> ty
  | Store _ -> Types.Void
  | Gep (ty, _, _) -> ty
  | Bin (_, ty, _, _) -> ty
  | Icmp _ | Fcmp _ -> Types.I1
  | Cast (_, ty, _) -> ty
  | Select (ty, _, _, _) -> ty
  | Call (ty, _, _) -> ty
  | Atomicrmw (_, ty, _, _) -> ty

let has_result i = not (Types.equal (result_ty i) Types.Void)

let operands i =
  match i.kind with
  | Alloca _ -> []
  | Load (_, p) -> [ p ]
  | Store (_, v, p) -> [ v; p ]
  | Gep (_, b, o) -> [ b; o ]
  | Bin (_, _, a, b) | Icmp (_, _, a, b) | Fcmp (_, _, a, b) -> [ a; b ]
  | Cast (_, _, v) -> [ v ]
  | Select (_, c, a, b) -> [ c; a; b ]
  | Call (_, Direct _, args) -> args
  | Call (_, Indirect f, args) -> f :: args
  | Atomicrmw (_, _, p, v) -> [ p; v ]

(* Rewrite every operand with [f]; used for replace-all-uses-with. *)
let map_operands f i =
  let kind =
    match i.kind with
    | Alloca _ as k -> k
    | Load (ty, p) -> Load (ty, f p)
    | Store (ty, v, p) -> Store (ty, f v, f p)
    | Gep (ty, b, o) -> Gep (ty, f b, f o)
    | Bin (op, ty, a, b) -> Bin (op, ty, f a, f b)
    | Icmp (cc, ty, a, b) -> Icmp (cc, ty, f a, f b)
    | Fcmp (cc, ty, a, b) -> Fcmp (cc, ty, f a, f b)
    | Cast (op, ty, v) -> Cast (op, ty, f v)
    | Select (ty, c, a, b) -> Select (ty, f c, f a, f b)
    | Call (ty, Direct name, args) -> Call (ty, Direct name, List.map f args)
    | Call (ty, Indirect fn, args) -> Call (ty, Indirect (f fn), List.map f args)
    | Atomicrmw (op, ty, p, v) -> Atomicrmw (op, ty, f p, f v)
  in
  i.kind <- kind

let callee_name i =
  match i.kind with Call (_, Direct name, _) -> Some name | _ -> None

(* Purity at the IR level only: calls and atomics are never pure here; the
   analyses refine call purity using device-runtime knowledge. *)
let is_pure i =
  match i.kind with
  | Store _ | Call _ | Atomicrmw _ -> false
  | Alloca _ | Load _ | Gep _ | Bin _ | Icmp _ | Fcmp _ | Cast _ | Select _ -> true

let writes_memory i = match i.kind with Store _ | Atomicrmw _ -> true | _ -> false
let reads_memory i = match i.kind with Load _ | Atomicrmw _ -> true | _ -> false

let bin_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Sdiv -> "sdiv" | Srem -> "srem"
  | Udiv -> "udiv" | Urem -> "urem" | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Lshr -> "lshr" | Ashr -> "ashr"
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"

let bin_of_name = function
  | "add" -> Some Add | "sub" -> Some Sub | "mul" -> Some Mul | "sdiv" -> Some Sdiv
  | "srem" -> Some Srem | "udiv" -> Some Udiv | "urem" -> Some Urem | "and" -> Some And
  | "or" -> Some Or | "xor" -> Some Xor | "shl" -> Some Shl | "lshr" -> Some Lshr
  | "ashr" -> Some Ashr | "fadd" -> Some Fadd | "fsub" -> Some Fsub | "fmul" -> Some Fmul
  | "fdiv" -> Some Fdiv | _ -> None

let icmp_name = function
  | Eq -> "eq" | Ne -> "ne" | Slt -> "slt" | Sle -> "sle" | Sgt -> "sgt" | Sge -> "sge"
  | Ult -> "ult" | Ule -> "ule" | Ugt -> "ugt" | Uge -> "uge"

let icmp_of_name = function
  | "eq" -> Some Eq | "ne" -> Some Ne | "slt" -> Some Slt | "sle" -> Some Sle
  | "sgt" -> Some Sgt | "sge" -> Some Sge | "ult" -> Some Ult | "ule" -> Some Ule
  | "ugt" -> Some Ugt | "uge" -> Some Uge | _ -> None

let fcmp_name = function
  | Oeq -> "oeq" | One -> "one" | Olt -> "olt" | Ole -> "ole" | Ogt -> "ogt" | Oge -> "oge"

let fcmp_of_name = function
  | "oeq" -> Some Oeq | "one" -> Some One | "olt" -> Some Olt | "ole" -> Some Ole
  | "ogt" -> Some Ogt | "oge" -> Some Oge | _ -> None

let cast_name = function
  | Zext -> "zext" | Sext -> "sext" | Trunc -> "trunc" | Sitofp -> "sitofp"
  | Fptosi -> "fptosi" | Fpext -> "fpext" | Fptrunc -> "fptrunc" | Bitcast -> "bitcast"
  | Spacecast -> "spacecast"

let cast_of_name = function
  | "zext" -> Some Zext | "sext" -> Some Sext | "trunc" -> Some Trunc
  | "sitofp" -> Some Sitofp | "fptosi" -> Some Fptosi | "fpext" -> Some Fpext
  | "fptrunc" -> Some Fptrunc | "bitcast" -> Some Bitcast | "spacecast" -> Some Spacecast
  | _ -> None

let atomic_name = function
  | A_add -> "add" | A_fadd -> "fadd" | A_min -> "min" | A_max -> "max"
  | A_exchange -> "exchange" | A_cas -> "cas"

let atomic_of_name = function
  | "add" -> Some A_add | "fadd" -> Some A_fadd | "min" -> Some A_min
  | "max" -> Some A_max | "exchange" -> Some A_exchange | "cas" -> Some A_cas
  | _ -> None

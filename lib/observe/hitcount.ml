(* Per-key hit counters (see the .mli). *)

type t = { mutex : Mutex.t; table : (string, int) Hashtbl.t }

let create () = { mutex = Mutex.create (); table = Hashtbl.create 64 }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let bump t key =
  with_lock t (fun () ->
      let n = 1 + Option.value (Hashtbl.find_opt t.table key) ~default:0 in
      Hashtbl.replace t.table key n;
      n)

let count t key =
  with_lock t (fun () -> Option.value (Hashtbl.find_opt t.table key) ~default:0)

let distinct t = with_lock t (fun () -> Hashtbl.length t.table)

let total t =
  with_lock t (fun () -> Hashtbl.fold (fun _ n acc -> acc + n) t.table 0)

let top ?(n = 10) t =
  with_lock t (fun () ->
      let all = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table [] in
      let sorted =
        (* count descending, key ascending for a deterministic order *)
        List.sort
          (fun (ka, va) (kb, vb) ->
            match compare vb va with 0 -> compare ka kb | c -> c)
          all
      in
      List.filteri (fun i _ -> i < n) sorted)

(** Thread-safe per-key hit counters, optionally bounded and persistent.

    A tiny frequency table over string keys (cache keys, request labels):
    each {!bump} increments one key's count under a mutex.  The compile
    daemon records one bump per tier-eligible request keyed by its
    {!Ompgpu_api.cache_key}, and the tier-upgrade queue drains hottest key
    first ({!count} ordering) so frequently requested entries get promoted
    to the full pipeline before one-off compiles (docs/SCHEDULER.md).

    Bounded mode: with [?max_keys], growing past the cap triggers
    decay-on-overflow — every count is halved and zeros are dropped, so
    hot keys survive (with their relative order) while one-off keys age
    out and memory stays O(cap) over unbounded key traffic.

    Persistence: {!save}/{!load_into} round-trip the table through a
    schema-stamped profile file ([{"schema":2,"hv":1,"counts":{...}}]),
    so a restarted [mompd serve --tiered] boots already knowing its hot
    keys. *)

type t

val create : ?max_keys:int -> unit -> t
(** [max_keys] caps the distinct-key count via decay-on-overflow;
    omitted, the table grows one entry per distinct key forever. *)

val bump : t -> string -> int
(** Increment [key]'s count; returns the new count (1 on first bump —
    though a decay triggered by this very bump may drop it again). *)

val count : t -> string -> int
(** Current count for [key]; 0 if never bumped (or decayed away). *)

val distinct : t -> int
(** Number of distinct keys currently tracked. *)

val total : t -> int
(** Sum of all counts. *)

val decays : t -> int
(** Halving passes run by the overflow cap since [create]. *)

val top : ?n:int -> t -> (string * int) list
(** The [n] (default 10) hottest keys, count descending, key ascending on
    ties (deterministic). *)

val profile_version : int
(** 1.  Bumped when the meaning of a saved count changes; {!load_into}
    restores nothing from a profile with an unknown version. *)

val to_json : t -> Json.t
(** The schema-stamped profile document. *)

val save : t -> path:string -> bool
(** Atomically (temp + rename) write the profile to [path].  Never
    raises — the profile is an optimization; [false] means the write
    failed and the next boot simply starts cold. *)

val load_into : t -> path:string -> int
(** Merge the counts saved at [path] into the live table (adding to any
    live counts), then apply the overflow cap.  Returns how many keys the
    file restored; 0 — never an exception — for a missing, unreadable,
    unparseable or wrong-version profile. *)

(* mompc: the MiniOMP compiler driver.

   Parses a MiniOMP source file, lowers it with the selected globalization
   scheme, optionally runs the OpenMP-aware optimizer, prints remarks, and
   emits the resulting MiniIR.  Optionally runs the program on the GPU
   simulator and reports kernel statistics.

   The disable flags mirror the paper artifact's LLVM flags
   openmp-opt-disable-... . *)

open Cmdliner

let scheme_conv =
  let parse = function
    | "simplified" -> Ok Frontend.Codegen.Simplified
    | "legacy" -> Ok Frontend.Codegen.Legacy
    | "cuda" -> Ok Frontend.Codegen.Cuda
    | s -> Error (`Msg ("unknown scheme: " ^ s))
  in
  let print ppf s = Fmt.string ppf (Frontend.Codegen.scheme_name s) in
  Arg.conv (parse, print)

let run_compile file scheme optimize no_spmd no_deglob no_csm no_fold no_group emit_ir
    run_sim remarks_only stats_json print_trace =
  let src = In_channel.with_open_text file In_channel.input_all in
  match Frontend.Codegen.compile ~scheme ~file src with
  | exception Frontend.Codegen.Error (msg, loc) ->
    Fmt.epr "%a: error: %s@." Support.Loc.pp loc msg;
    1
  | exception Frontend.Cparse.Parse_error (msg, loc) ->
    Fmt.epr "%a: parse error: %s@." Support.Loc.pp loc msg;
    1
  | exception Frontend.Lexer.Lex_error (msg, loc) ->
    Fmt.epr "%a: lex error: %s@." Support.Loc.pp loc msg;
    1
  | m -> (
    match Ir.Verify.check m with
    | Error msg ->
      Fmt.epr "verifier error (front end): %s@." msg;
      1
    | Ok () ->
      (* the trace feeds both --trace (human-readable) and --stats-json *)
      let trace =
        if print_trace || stats_json <> None then Some (Observe.Trace.create ())
        else None
      in
      let opt_report = ref None in
      if optimize then begin
        let options =
          {
            Openmpopt.Pass_manager.default_options with
            disable_spmdization = no_spmd;
            disable_deglobalization = no_deglob;
            disable_state_machine_rewrite = no_csm;
            disable_folding = no_fold;
            disable_guard_grouping = no_group;
          }
        in
        let report = Openmpopt.Pass_manager.run ~options ?trace m in
        opt_report := Some report;
        List.iter
          (fun r -> Fmt.epr "%s@." (Openmpopt.Remark.to_string r))
          report.Openmpopt.Pass_manager.remarks;
        Fmt.epr "openmp-opt: %a@." Openmpopt.Pass_manager.pp_report report;
        (match Ir.Verify.check m with
        | Error msg ->
          Fmt.epr "verifier error (after openmp-opt): %s@." msg;
          exit 1
        | Ok () -> ());
        if print_trace then
          Option.iter
            (fun tr ->
              Fmt.epr "openmp-opt trace:@.";
              List.iter
                (fun e -> Fmt.epr "  %a@." Observe.Trace.pp_event e)
                (Observe.Trace.events tr))
            trace
      end;
      if emit_ir && not remarks_only then Fmt.pr "%a" Ir.Printer.pp_module m;
      let sim_result =
        if run_sim then begin
          let sim = Gpusim.Interp.create Gpusim.Machine.bench_machine m in
          match Gpusim.Interp.run_host sim with
          | exception Gpusim.Mem.Out_of_memory msg ->
            Fmt.epr "device out of memory: %s@." msg;
            exit 3
          | () ->
            Fmt.pr "; kernel cycles: %d@." (Gpusim.Interp.total_kernel_cycles sim);
            List.iter
              (fun (s : Gpusim.Interp.launch_stats) ->
                Fmt.pr
                  "; %s: cycles=%d regs=%d smem=%dB heap=%dB instrs=%d barriers=%d \
                   atomics=%d div-branches=%d@."
                  s.Gpusim.Interp.kernel_name s.Gpusim.Interp.cycles
                  s.Gpusim.Interp.registers s.Gpusim.Interp.shared_bytes
                  s.Gpusim.Interp.heap_high_water s.Gpusim.Interp.instructions
                  s.Gpusim.Interp.barriers
                  (s.Gpusim.Interp.atomics_global + s.Gpusim.Interp.atomics_shared)
                  s.Gpusim.Interp.divergent_branches)
              sim.Gpusim.Interp.kernel_stats;
            Fmt.pr "; trace:%a@."
              (Fmt.list ~sep:Fmt.sp Gpusim.Rvalue.pp)
              (Gpusim.Interp.trace_values sim);
            Some sim
        end
        else None
      in
      (match stats_json with
      | None -> ()
      | Some path ->
        let json =
          Observe.Json.Obj
            ([
               ("file", Observe.Json.String file);
               ( "scheme",
                 Observe.Json.String (Frontend.Codegen.scheme_name scheme) );
               ( "report",
                 match !opt_report with
                 | Some r -> Openmpopt.Pass_manager.report_to_json r
                 | None -> Observe.Json.Null );
               ( "passes",
                 match trace with
                 | Some tr -> Observe.Trace.to_json tr
                 | None -> Observe.Json.List [] );
             ]
            @
            match sim_result with
            | Some sim -> [ ("sim", Gpusim.Stats.json_of_sim sim) ]
            | None -> [])
        in
        try
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc (Observe.Json.to_string json);
              Out_channel.output_char oc '\n')
        with Sys_error msg ->
          Fmt.epr "cannot write stats: %s@." msg;
          exit 2);
      0)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniOMP source file")

let scheme_arg =
  Arg.(
    value
    & opt scheme_conv Frontend.Codegen.Simplified
    & info [ "scheme" ] ~docv:"SCHEME"
        ~doc:"Globalization scheme: simplified (LLVM 13), legacy (LLVM 12), cuda")

let flag names doc = Arg.(value & flag & info names ~doc)

let cmd =
  let doc = "compile MiniOMP to MiniIR with OpenMP-aware optimization" in
  Cmd.v
    (Cmd.info "mompc" ~doc)
    Term.(
      const run_compile $ file_arg $ scheme_arg
      $ flag [ "O"; "openmp-opt" ] "Run the OpenMP-aware optimization pipeline"
      $ flag [ "openmp-opt-disable-spmdization" ] "Disable SPMDzation"
      $ flag [ "openmp-opt-disable-deglobalization" ] "Disable HeapToStack/HeapToShared"
      $ flag [ "openmp-opt-disable-state-machine-rewrite" ]
          "Disable the custom state machine rewrite"
      $ flag [ "openmp-opt-disable-folding" ] "Disable runtime-call folding"
      $ flag [ "openmp-opt-disable-guard-grouping" ]
          "Disable side-effect grouping before guard generation (Fig. 7)"
      $ Arg.(value & opt bool true & info [ "emit-ir" ] ~doc:"Print the final MiniIR")
      $ flag [ "run" ] "Execute on the GPU simulator and print kernel statistics"
      $ flag [ "remarks-only" ] "Suppress IR output; print only remarks"
      $ Arg.(
          value
          & opt (some string) None
          & info [ "stats-json" ] ~docv:"FILE"
              ~doc:
                "Write per-round/per-pass pipeline events, the report \
                 counters and (with $(b,--run)) per-kernel simulator \
                 cost-model counters as JSON to $(docv)")
      $ flag [ "trace" ] "Print the per-pass pipeline trace to stderr")

let () = exit (Cmd.eval' cmd)

(* Recursive-descent parser for MiniOMP. *)

open Ast

exception Parse_error of string * Support.Loc.t

let error loc fmt = Fmt.kstr (fun s -> raise (Parse_error (s, loc))) fmt

type state = { toks : Lexer.spanned array; mutable idx : int }

let peek st = st.toks.(st.idx)
let peek2 st = if st.idx + 1 < Array.length st.toks then Some st.toks.(st.idx + 1) else None
let next st =
  let t = st.toks.(st.idx) in
  if st.idx + 1 < Array.length st.toks then st.idx <- st.idx + 1;
  t

let cur_loc st = (peek st).Lexer.loc

let expect_punct st p =
  match next st with
  | { tok = Lexer.PUNCT q; _ } when q = p -> ()
  | { loc; _ } -> error loc "expected '%s'" p

let accept_punct st p =
  match (peek st).tok with
  | Lexer.PUNCT q when q = p ->
    ignore (next st);
    true
  | _ -> false

let expect_ident st =
  match next st with
  | { tok = Lexer.IDENT x; _ } -> x
  | { loc; _ } -> error loc "expected identifier"

let is_type_kw = function
  | "void" | "int" | "long" | "float" | "double" -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let base_ty_of_kw loc = function
  | "void" -> Tvoid
  | "int" -> Tint
  | "long" -> Tlong
  | "float" -> Tfloat
  | "double" -> Tdouble
  | kw -> error loc "not a type: %s" kw

let parse_base_ty st =
  match next st with
  | { tok = Lexer.KW kw; loc } when is_type_kw kw ->
    let base = base_ty_of_kw loc kw in
    let rec stars t = if accept_punct st "*" then stars (Tptr t) else t in
    stars base
  | { loc; _ } -> error loc "expected type"

let looking_at_type st =
  match (peek st).tok with Lexer.KW kw -> is_type_kw kw | _ -> false

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let mk loc e = { e; eloc = loc }

let rec parse_expr st = parse_assign st

and parse_assign st =
  let lhs = parse_cond st in
  let loc = cur_loc st in
  match (peek st).tok with
  | Lexer.PUNCT "=" ->
    ignore (next st);
    mk loc (Assign (lhs, parse_assign st))
  | Lexer.PUNCT ("+=" | "-=" | "*=" | "/=" | "%=" as p) ->
    ignore (next st);
    let op =
      match p with
      | "+=" -> Add | "-=" -> Sub | "*=" -> Mul | "/=" -> Div | _ -> Mod
    in
    mk loc (Op_assign (op, lhs, parse_assign st))
  | _ -> lhs

and parse_cond st =
  let c = parse_binary st 0 in
  if accept_punct st "?" then begin
    let loc = c.eloc in
    let t = parse_expr st in
    expect_punct st ":";
    let f = parse_cond st in
    mk loc (Cond (c, t, f))
  end
  else c

(* precedence-climbing over binary operators *)
and binop_of_punct = function
  | "||" -> Some (Lor, 0) | "&&" -> Some (Land, 1)
  | "|" -> Some (Bor, 2) | "^" -> Some (Bxor, 3) | "&" -> Some (Band, 4)
  | "==" -> Some (Eq, 5) | "!=" -> Some (Ne, 5)
  | "<" -> Some (Lt, 6) | "<=" -> Some (Le, 6) | ">" -> Some (Gt, 6) | ">=" -> Some (Ge, 6)
  | "<<" -> Some (Shl, 7) | ">>" -> Some (Shr, 7)
  | "+" -> Some (Add, 8) | "-" -> Some (Sub, 8)
  | "*" -> Some (Mul, 9) | "/" -> Some (Div, 9) | "%" -> Some (Mod, 9)
  | _ -> None

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match (peek st).tok with
    | Lexer.PUNCT p -> (
      match binop_of_punct p with
      | Some (op, prec) when prec >= min_prec ->
        let loc = cur_loc st in
        ignore (next st);
        let rhs = parse_binary st (prec + 1) in
        lhs := mk loc (Binary (op, !lhs, rhs))
      | _ -> continue_ := false)
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st =
  let loc = cur_loc st in
  match (peek st).tok with
  | Lexer.PUNCT "-" ->
    ignore (next st);
    mk loc (Unary (Neg, parse_unary st))
  | Lexer.PUNCT "!" ->
    ignore (next st);
    mk loc (Unary (Lnot, parse_unary st))
  | Lexer.PUNCT "~" ->
    ignore (next st);
    mk loc (Unary (Bnot, parse_unary st))
  | Lexer.PUNCT "&" ->
    ignore (next st);
    mk loc (Unary (Addr, parse_unary st))
  | Lexer.PUNCT "*" ->
    ignore (next st);
    mk loc (Unary (Deref, parse_unary st))
  | Lexer.PUNCT "++" ->
    ignore (next st);
    let e = parse_unary st in
    mk loc (Op_assign (Add, e, mk loc (Int_lit 1L)))
  | Lexer.PUNCT "--" ->
    ignore (next st);
    let e = parse_unary st in
    mk loc (Op_assign (Sub, e, mk loc (Int_lit 1L)))
  | Lexer.PUNCT "(" when (match peek2 st with
                         | Some { tok = Lexer.KW kw; _ } -> is_type_kw kw
                         | _ -> false) ->
    ignore (next st);
    let ty = parse_base_ty st in
    expect_punct st ")";
    mk loc (Cast (ty, parse_unary st))
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    let loc = cur_loc st in
    match (peek st).tok with
    | Lexer.PUNCT "[" ->
      ignore (next st);
      let idx = parse_expr st in
      expect_punct st "]";
      e := mk loc (Index (!e, idx))
    | Lexer.PUNCT "++" ->
      ignore (next st);
      e := mk loc (Op_assign (Add, !e, mk loc (Int_lit 1L)))
    | Lexer.PUNCT "--" ->
      ignore (next st);
      e := mk loc (Op_assign (Sub, !e, mk loc (Int_lit 1L)))
    | _ -> continue_ := false
  done;
  !e

and parse_primary st =
  let { Lexer.tok; loc } = next st in
  match tok with
  | Lexer.INT_LIT v -> mk loc (Int_lit v)
  | Lexer.FLOAT_LIT v -> mk loc (Float_lit v)
  | Lexer.IDENT x ->
    if accept_punct st "(" then begin
      let args = ref [] in
      if not (accept_punct st ")") then begin
        let rec loop () =
          args := parse_expr st :: !args;
          if accept_punct st "," then loop () else expect_punct st ")"
        in
        loop ()
      end;
      mk loc (Call (x, List.rev !args))
    end
    else mk loc (Ident x)
  | Lexer.PUNCT "(" ->
    let e = parse_expr st in
    expect_punct st ")";
    e
  | _ -> error loc "expected expression"

(* ------------------------------------------------------------------ *)
(* Pragmas                                                             *)
(* ------------------------------------------------------------------ *)

let parse_clauses loc text =
  (* text looks like "num_teams(8)thread_limit(128)" *)
  let n = String.length text in
  let pos = ref 0 in
  let clauses = ref [] in
  while !pos < n do
    let start = !pos in
    while !pos < n && text.[!pos] <> '(' do
      incr pos
    done;
    if !pos >= n then error loc "malformed clause list: %s" text;
    let name = String.sub text start (!pos - start) in
    incr pos;
    let num_start = !pos in
    while !pos < n && text.[!pos] <> ')' do
      incr pos
    done;
    if !pos >= n then error loc "malformed clause list: %s" text;
    let num_text = String.sub text num_start (!pos - num_start) in
    incr pos;
    let v =
      match int_of_string_opt (String.trim num_text) with
      | Some v -> v
      | None -> error loc "clause %s requires an integer constant, got %s" name num_text
    in
    let clause =
      match name with
      | "num_teams" -> Num_teams v
      | "thread_limit" -> Thread_limit v
      | "num_threads" -> Num_threads v
      | _ -> error loc "unknown clause %s" name
    in
    clauses := clause :: !clauses
  done;
  List.rev !clauses

let parse_pragma loc words =
  let clauses_of rest = parse_clauses loc (String.concat "" rest) in
  match words with
  | "target" :: "teams" :: "distribute" :: "parallel" :: "for" :: rest ->
    P_target_teams_distribute_parallel_for (clauses_of rest)
  | "target" :: "teams" :: "distribute" :: rest -> P_target_teams_distribute (clauses_of rest)
  | "target" :: "teams" :: rest -> P_target_teams (clauses_of rest)
  | "parallel" :: "for" :: rest -> P_parallel_for (clauses_of rest)
  | "parallel" :: rest -> P_parallel (clauses_of rest)
  | [ "barrier" ] -> P_barrier
  | [ "atomic" ] -> P_atomic
  | _ -> error loc "unsupported pragma: omp %s" (String.concat " " words)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let mks loc s = { s; sloc = loc }

let rec parse_stmt st =
  let loc = cur_loc st in
  match (peek st).tok with
  | Lexer.PRAGMA (words, ploc) ->
    ignore (next st);
    let pragma = parse_pragma ploc words in
    (match pragma with
    | P_barrier -> mks loc (Pragma (pragma, mks loc (Block [])))
    | _ -> mks loc (Pragma (pragma, parse_stmt st)))
  | Lexer.PUNCT "{" ->
    ignore (next st);
    let stmts = ref [] in
    while not (accept_punct st "}") do
      stmts := parse_stmt st :: !stmts
    done;
    mks loc (Block (List.rev !stmts))
  | Lexer.KW "if" ->
    ignore (next st);
    expect_punct st "(";
    let c = parse_expr st in
    expect_punct st ")";
    let t = parse_stmt st in
    let f =
      match (peek st).tok with
      | Lexer.KW "else" ->
        ignore (next st);
        Some (parse_stmt st)
      | _ -> None
    in
    mks loc (If (c, t, f))
  | Lexer.KW "while" ->
    ignore (next st);
    expect_punct st "(";
    let c = parse_expr st in
    expect_punct st ")";
    mks loc (While (c, parse_stmt st))
  | Lexer.KW "for" ->
    ignore (next st);
    expect_punct st "(";
    let init =
      if accept_punct st ";" then None
      else begin
        let s = parse_simple_stmt st in
        expect_punct st ";";
        Some s
      end
    in
    let cond = if accept_punct st ";" then None
      else begin
        let e = parse_expr st in
        expect_punct st ";";
        Some e
      end
    in
    let step = if accept_punct st ")" then None
      else begin
        let e = parse_expr st in
        expect_punct st ")";
        Some e
      end
    in
    mks loc (For (init, cond, step, parse_stmt st))
  | Lexer.KW "return" ->
    ignore (next st);
    if accept_punct st ";" then mks loc (Return None)
    else begin
      let e = parse_expr st in
      expect_punct st ";";
      mks loc (Return (Some e))
    end
  | Lexer.KW "break" ->
    ignore (next st);
    expect_punct st ";";
    mks loc Break
  | Lexer.KW "continue" ->
    ignore (next st);
    expect_punct st ";";
    mks loc Continue
  | _ ->
    let s = parse_simple_stmt st in
    expect_punct st ";";
    s

(* declaration or expression, without the trailing semicolon *)
and parse_simple_stmt st =
  let loc = cur_loc st in
  if looking_at_type st then begin
    let ty = parse_base_ty st in
    let name = expect_ident st in
    (* array suffixes *)
    let rec arr_suffix ty =
      if accept_punct st "[" then begin
        let n =
          match next st with
          | { tok = Lexer.INT_LIT v; _ } -> Int64.to_int v
          | { loc; _ } -> error loc "array size must be an integer constant"
        in
        expect_punct st "]";
        (* innermost dimension binds last: int a[2][3] = Tarr(Tarr(int,3),2) *)
        match arr_suffix ty with t -> Tarr (t, n)
      end
      else ty
    in
    let ty = arr_suffix ty in
    let init = if accept_punct st "=" then Some (parse_expr st) else None in
    mks loc (Decl (ty, name, init))
  end
  else mks loc (Expr (parse_expr st))

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let parse_params st =
  expect_punct st "(";
  if accept_punct st ")" then []
  else begin
    let params = ref [] in
    let rec loop () =
      let ty = parse_base_ty st in
      let name = expect_ident st in
      (* array parameters decay to pointers *)
      let ty = if accept_punct st "[" then (expect_punct st "]"; Tptr ty) else ty in
      params := (ty, name) :: !params;
      if accept_punct st "," then loop () else expect_punct st ")"
    in
    loop ();
    List.rev !params
  end

let parse_program ~file src =
  let toks = Array.of_list (Lexer.tokenize ~file src) in
  let st = { toks; idx = 0 } in
  let funcs = ref [] in
  let globals = ref [] in
  let pending_assumes = ref [] in
  let rec loop () =
    match (peek st).tok with
    | Lexer.EOF -> ()
    | Lexer.PRAGMA (words, ploc) ->
      ignore (next st);
      (match words with
      | [ "assume"; "ext_spmd_amenable" ] ->
        pending_assumes := A_spmd_amenable :: !pending_assumes
      | [ "assume"; "ext_nocapture" ] -> pending_assumes := A_nocapture :: !pending_assumes
      | [ "assume"; "ext_no_openmp" ] -> pending_assumes := A_no_openmp :: !pending_assumes
      | [ "declare"; "target" ] | [ "end"; "declare"; "target" ] -> ()
      | _ -> error ploc "unsupported top-level pragma: omp %s" (String.concat " " words));
      loop ()
    | _ ->
      let loc = cur_loc st in
      let is_static =
        match (peek st).tok with
        | Lexer.KW "static" ->
          ignore (next st);
          true
        | _ -> false
      in
      let is_extern =
        match (peek st).tok with
        | Lexer.KW "extern" ->
          ignore (next st);
          true
        | _ -> false
      in
      let ty = parse_base_ty st in
      let name = expect_ident st in
      (match (peek st).tok with
      | Lexer.PUNCT "(" ->
        let params = parse_params st in
        let body =
          if accept_punct st ";" then None
          else begin
            let body = parse_stmt st in
            Some body
          end
        in
        let body = if is_extern then None else body in
        funcs :=
          {
            fname = name;
            fret = ty;
            fparams = params;
            fbody = body;
            fassumes = List.rev !pending_assumes;
            fstatic = is_static;
            floc = loc;
          }
          :: !funcs;
        pending_assumes := []
      | _ ->
        (* global variable, possibly an array *)
        let rec arr_suffix ty =
          if accept_punct st "[" then begin
            let n =
              match next st with
              | { tok = Lexer.INT_LIT v; _ } -> Int64.to_int v
              | { loc; _ } -> error loc "array size must be an integer constant"
            in
            expect_punct st "]";
            match arr_suffix ty with t -> Tarr (t, n)
          end
          else ty
        in
        let ty = arr_suffix ty in
        expect_punct st ";";
        globals := { gname = name; gty = ty; gloc = loc } :: !globals);
      loop ()
  in
  loop ();
  { globals = List.rev !globals; funcs = List.rev !funcs }

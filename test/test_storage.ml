(* Storage governance (ISSUE 10).

   What this suite pins: the in-memory result cache's LRU bounds (entry
   and byte caps, eviction order, re-insert-on-replace so a tier upgrade
   survives mid-flight eviction), the disk cache's startup scrub + byte
   ledger + quota eviction + ENOSPC write breaker (trip, skip, re-probe,
   recover), the hotness table's decay-on-overflow and its persistent
   profile, the journal's mid-life size-cap rotation, and the daemon-level
   composition of all of it: injected disk-full under concurrent traffic
   is never client-visible, and a tiered daemon restarted over the same
   --state-dir boots already knowing its hot keys. *)

module J = Observe.Json
module E = Fault.Ompgpu_error
module A = Ompgpu_api

let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let tiny = Proxyapps.App.Tiny
let app_source name = (Proxyapps.Apps.find_exn name).Proxyapps.App.omp_source tiny

let fresh_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mompst-%d-%d.sock" (Unix.getpid ()) !n)

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  path

let write_file path contents =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc contents)

let ok_exn = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected service error: %s" (E.to_string e)

let with_server ?(domains = 2) ?(capacity = 8) ?cache_dir ?state_dir
    ?(injector = Fault.Injector.none) ?(tiered = false) ?cache_max_entries
    ?cache_max_bytes ?journal_max_bytes f =
  let socket_path = fresh_socket () in
  let server =
    Service.Server.create
      {
        Service.Server.socket_path;
        domains;
        capacity;
        watchdog_s = None;
        cache_dir;
        state_dir;
        injector;
        drain_deadline_s = 5.0;
        tiered;
        cache_max_entries;
        cache_max_bytes;
        journal_max_bytes;
      }
  in
  let thread = Thread.create Service.Server.serve_forever server in
  Fun.protect
    ~finally:(fun () ->
      Service.Server.stop server;
      Thread.join thread)
    (fun () -> f socket_path)

let inject spec =
  match Fault.Injector.parse_spec spec with
  | Ok s -> Fault.Injector.create [ s ]
  | Error m -> Alcotest.fail m

let storage_member stats path conv =
  let rec go doc = function
    | [] -> conv doc
    | k :: rest -> Option.bind (J.member k doc) (fun d -> go d rest)
  in
  Option.bind (J.member "storage" stats) (fun s -> go s path)

let storage_int stats path = storage_member stats path J.to_int

let storage_bool stats path =
  storage_member stats path (function J.Bool b -> Some b | _ -> None)

(* ------------------------------------------------------------------ *)
(* In-memory cache: LRU bounds                                         *)
(* ------------------------------------------------------------------ *)

let get c key = Sched.Cache.find_or_compute c ~key (fun () -> "v:" ^ key)

let test_cache_lru_entry_cap () =
  let c = Sched.Cache.create ~max_entries:3 () in
  ignore (get c "a");
  ignore (get c "b");
  ignore (get c "c");
  (* a request-path read refreshes recency: a is now the hottest *)
  ignore (get c "a");
  ignore (get c "d");
  Alcotest.(check int) "capped at 3 entries" 3 (Sched.Cache.length c);
  Alcotest.(check int) "one eviction" 1 (Sched.Cache.evictions c);
  Alcotest.(check (option string))
    "b — the least recently used — was the one evicted" None
    (Sched.Cache.peek c ~key:"b");
  List.iter
    (fun k ->
      Alcotest.(check (option string))
        (k ^ " retained") (Some ("v:" ^ k))
        (Sched.Cache.peek c ~key:k))
    [ "a"; "c"; "d" ];
  (* peek is recency-neutral: peeking c then inserting must evict c (the
     LRU), not a *)
  ignore (Sched.Cache.peek c ~key:"c");
  ignore (get c "e");
  Alcotest.(check (option string))
    "peek did not refresh c" None
    (Sched.Cache.peek c ~key:"c")

let test_cache_byte_cap_invariant () =
  let cap = 64 in
  let c = Sched.Cache.create ~max_bytes:cap ~size_of:String.length () in
  (* deterministic varied-size insert storm: the byte invariant must hold
     after every single insert *)
  for i = 1 to 100 do
    let key = Printf.sprintf "k%d" i in
    let v = String.make (1 + (i * 7 mod 23)) 'x' in
    let got = Sched.Cache.find_or_compute c ~key (fun () -> v) in
    Alcotest.(check string) ("insert " ^ key ^ " returns its value") v got;
    if Sched.Cache.bytes c > cap then
      Alcotest.failf "byte cap violated after %s: %d > %d" key
        (Sched.Cache.bytes c) cap
  done;
  Alcotest.(check bool) "evictions happened" true (Sched.Cache.evictions c > 0);
  (* a single value over the whole cap is computed and returned but never
     retained *)
  let big = String.make (cap + 1) 'y' in
  let c2 = Sched.Cache.create ~max_bytes:cap ~size_of:String.length () in
  let got = Sched.Cache.find_or_compute c2 ~key:"big" (fun () -> big) in
  Alcotest.(check string) "oversized value still returned" big got;
  Alcotest.(check (option string))
    "oversized value not retained" None
    (Sched.Cache.peek c2 ~key:"big");
  Alcotest.(check int) "cache left empty" 0 (Sched.Cache.length c2)

let test_cache_replace_reinserts_after_eviction () =
  (* the tier-upgrade contract: promoting a key whose fast entry was
     evicted mid-upgrade re-inserts it, so the entry still converges to
     the full-pipeline bytes *)
  let c = Sched.Cache.create ~max_entries:1 () in
  ignore (Sched.Cache.find_or_compute c ~key:"a" (fun () -> "fast-a"));
  ignore (Sched.Cache.find_or_compute c ~key:"b" (fun () -> "fast-b"));
  Alcotest.(check (option string))
    "a evicted by b" None (Sched.Cache.peek c ~key:"a");
  Sched.Cache.replace c ~key:"a" "full-a";
  Alcotest.(check (option string))
    "replace re-inserted the promoted entry" (Some "full-a")
    (Sched.Cache.peek c ~key:"a");
  Alcotest.(check int) "cap still holds" 1 (Sched.Cache.length c)

(* ------------------------------------------------------------------ *)
(* Disk cache: scrub, ledger, quota, breaker                           *)
(* ------------------------------------------------------------------ *)

let test_disk_scrub_quarantines_and_ledgers () =
  let dir = temp_dir "scrub" in
  let c1 = Sched.Disk_cache.create ~dir () in
  Sched.Disk_cache.store c1 ~key:"good1" ~data:"payload one";
  Sched.Disk_cache.store c1 ~key:"good2" ~data:"payload two";
  Sched.Disk_cache.store c1 ~key:"bad" ~data:"payload three";
  (* corrupt one entry on disk behind the cache's back, and drop a
     foreign file (its name is outside the entry charset: not ours) *)
  write_file (Filename.concat dir "bad") "garbage, no header";
  write_file (Filename.concat dir "notes.txt") "not a cache entry";
  let quarantined = ref [] in
  let c2 =
    Sched.Disk_cache.create
      ~on_corrupt:(fun ~key ~path:_ -> quarantined := key :: !quarantined)
      ~dir ()
  in
  Alcotest.(check int) "scrub verified the two good entries" 2
    (Sched.Disk_cache.scrubbed c2);
  Alcotest.(check int) "scrub quarantined the corrupt one" 1
    (Sched.Disk_cache.corrupt c2);
  Alcotest.(check (list string)) "on_corrupt reported it" [ "bad" ] !quarantined;
  Alcotest.(check bool) "evidence preserved under quarantine/" true
    (Sys.file_exists (Filename.concat (Filename.concat dir "quarantine") "bad"));
  Alcotest.(check bool) "foreign file untouched" true
    (Sys.file_exists (Filename.concat dir "notes.txt"));
  (* the ledger starts exact: entry count and byte total match a stat
     walk over the surviving entries *)
  Alcotest.(check int) "ledger entries" 2 (Sched.Disk_cache.entries c2);
  let stat_sum =
    List.fold_left
      (fun acc name ->
        acc + (Unix.stat (Filename.concat dir name)).Unix.st_size)
      0 [ "good1"; "good2" ]
  in
  Alcotest.(check int) "ledger bytes match du over the entries" stat_sum
    (Sched.Disk_cache.bytes c2);
  Alcotest.(check (option string))
    "good entry still served" (Some "payload one")
    (Sched.Disk_cache.find c2 ~key:"good1");
  Alcotest.(check (option string))
    "corrupt entry is a miss" None
    (Sched.Disk_cache.find c2 ~key:"bad")

let test_disk_quota_evicts_oldest () =
  let dir = temp_dir "quota" in
  (* one encoded entry = 47-byte header + payload; 100-byte payloads and
     a 320-byte quota fit two entries, never three *)
  let payload n = String.make 100 (Char.chr (Char.code 'a' + n)) in
  let c = Sched.Disk_cache.create ~max_bytes:320 ~dir () in
  Sched.Disk_cache.store c ~key:"k0" ~data:(payload 0);
  Sched.Disk_cache.store c ~key:"k1" ~data:(payload 1);
  Alcotest.(check int) "two entries fit" 2 (Sched.Disk_cache.entries c);
  Sched.Disk_cache.store c ~key:"k2" ~data:(payload 2);
  Alcotest.(check int) "still two entries" 2 (Sched.Disk_cache.entries c);
  Alcotest.(check int) "one eviction" 1 (Sched.Disk_cache.evictions c);
  Alcotest.(check bool) "byte quota holds" true (Sched.Disk_cache.bytes c <= 320);
  Alcotest.(check (option string))
    "the oldest entry was the one evicted" None
    (Sched.Disk_cache.find c ~key:"k0");
  Alcotest.(check (option string))
    "the newest survives" (Some (payload 2))
    (Sched.Disk_cache.find c ~key:"k2");
  (* a re-created cache over the same directory converges to a smaller
     quota before serving *)
  let c2 = Sched.Disk_cache.create ~max_bytes:150 ~dir () in
  Alcotest.(check int) "shrunken quota converged at create" 1
    (Sched.Disk_cache.entries c2);
  Alcotest.(check bool) "shrunken byte quota holds" true
    (Sched.Disk_cache.bytes c2 <= 150);
  (* entry-count cap, same mechanism *)
  let dir2 = temp_dir "quota-n" in
  let c3 = Sched.Disk_cache.create ~max_entries:2 ~dir:dir2 () in
  List.iter
    (fun k -> Sched.Disk_cache.store c3 ~key:k ~data:"x")
    [ "a"; "b"; "c"; "d" ];
  Alcotest.(check int) "entry cap holds" 2 (Sched.Disk_cache.entries c3);
  Alcotest.(check int) "entry-cap evictions" 2 (Sched.Disk_cache.evictions c3)

let test_disk_full_injected_breaker () =
  let dir = temp_dir "enospc" in
  let c =
    Sched.Disk_cache.create ~injector:(inject "disk-full:1.0")
      ~failure_threshold:2 ~dir ()
  in
  Sched.Disk_cache.store c ~key:"k1" ~data:"x";
  Alcotest.(check bool) "one failure does not trip" false
    (Sched.Disk_cache.writes_disabled c);
  Sched.Disk_cache.store c ~key:"k2" ~data:"x";
  Alcotest.(check int) "both failures counted" 2
    (Sched.Disk_cache.store_failures c);
  Alcotest.(check int) "breaker tripped once" 1 (Sched.Disk_cache.breaker_trips c);
  Alcotest.(check bool) "writes disabled" true (Sched.Disk_cache.writes_disabled c);
  (* while open, stores are skipped outright: no new failures counted *)
  Sched.Disk_cache.store c ~key:"k3" ~data:"x";
  Alcotest.(check int) "skipped store not counted as a failure" 2
    (Sched.Disk_cache.store_failures c);
  Alcotest.(check int) "nothing ever reached the disk" 0
    (Sched.Disk_cache.entries c)

let test_disk_breaker_recovers () =
  (* real (non-injected) failures: the cache directory vanishes out from
     under the store — ENOENT-shaped, same never-raise contract — then
     comes back, and the post-cooldown probe store re-enables writes *)
  let dir = temp_dir "recover" in
  let c =
    Sched.Disk_cache.create ~failure_threshold:2 ~reprobe_after_s:0.05 ~dir ()
  in
  let hidden = dir ^ ".hidden" in
  Sys.rename dir hidden;
  Sched.Disk_cache.store c ~key:"k1" ~data:"x";
  Sched.Disk_cache.store c ~key:"k2" ~data:"x";
  Alcotest.(check int) "failures tripped the breaker" 1
    (Sched.Disk_cache.breaker_trips c);
  Alcotest.(check bool) "breaker open" true (Sched.Disk_cache.writes_disabled c);
  Sys.rename hidden dir;
  Thread.delay 0.06;
  Alcotest.(check bool) "cooldown elapsed: breaker half-open" false
    (Sched.Disk_cache.writes_disabled c);
  Sched.Disk_cache.store c ~key:"k3" ~data:"back";
  Alcotest.(check (option string))
    "probe store landed" (Some "back")
    (Sched.Disk_cache.find c ~key:"k3");
  Alcotest.(check bool) "writes re-enabled" false
    (Sched.Disk_cache.writes_disabled c);
  Alcotest.(check int) "exactly the two real failures counted" 2
    (Sched.Disk_cache.store_failures c)

(* ------------------------------------------------------------------ *)
(* Hotness: decay-on-overflow and the persistent profile               *)
(* ------------------------------------------------------------------ *)

let test_hitcount_decay_on_overflow () =
  let h = Observe.Hitcount.create ~max_keys:4 () in
  for _ = 1 to 8 do
    ignore (Observe.Hitcount.bump h "hot")
  done;
  for i = 1 to 6 do
    ignore (Observe.Hitcount.bump h (Printf.sprintf "oneoff%d" i))
  done;
  Alcotest.(check bool) "bounded at the cap" true
    (Observe.Hitcount.distinct h <= 4);
  Alcotest.(check bool) "decay passes ran" true (Observe.Hitcount.decays h > 0);
  (match Observe.Hitcount.top ~n:1 h with
  | [ (k, _) ] -> Alcotest.(check string) "the hot key survives decay" "hot" k
  | _ -> Alcotest.fail "top returned no keys");
  Alcotest.(check bool) "hot key keeps a multi-bump count" true
    (Observe.Hitcount.count h "hot" > 1)

let test_hitcount_profile_roundtrip () =
  let dir = temp_dir "profile" in
  let path = Filename.concat dir "hotness.json" in
  let h = Observe.Hitcount.create () in
  List.iter
    (fun (k, n) ->
      for _ = 1 to n do
        ignore (Observe.Hitcount.bump h k)
      done)
    [ ("hot", 5); ("warm", 3); ("cold", 1) ];
  Alcotest.(check bool) "save succeeds" true (Observe.Hitcount.save h ~path);
  let h2 = Observe.Hitcount.create () in
  Alcotest.(check int) "restore reports the key count" 3
    (Observe.Hitcount.load_into h2 ~path);
  List.iter
    (fun (k, n) ->
      Alcotest.(check int) ("restored count: " ^ k) n
        (Observe.Hitcount.count h2 k))
    [ ("hot", 5); ("warm", 3); ("cold", 1) ];
  Alcotest.(check (list (pair string int)))
    "hottest-first order survives the round trip"
    (Observe.Hitcount.top h) (Observe.Hitcount.top h2);
  (* merge semantics: loading on top of live counts adds *)
  Alcotest.(check int) "second restore merges" 3
    (Observe.Hitcount.load_into h2 ~path);
  Alcotest.(check int) "counts added" 10 (Observe.Hitcount.count h2 "hot");
  (* a missing, garbage or wrong-version profile restores nothing *)
  let h3 = Observe.Hitcount.create () in
  Alcotest.(check int) "missing profile: cold boot" 0
    (Observe.Hitcount.load_into h3 ~path:(Filename.concat dir "absent.json"));
  write_file path "{not json";
  Alcotest.(check int) "garbage profile: cold boot" 0
    (Observe.Hitcount.load_into h3 ~path);
  write_file path {|{"schema":2,"hv":999,"counts":{"hot":5}}|};
  Alcotest.(check int) "unknown profile version: cold boot" 0
    (Observe.Hitcount.load_into h3 ~path)

(* ------------------------------------------------------------------ *)
(* Journal: mid-life size-cap rotation                                 *)
(* ------------------------------------------------------------------ *)

let test_journal_midlife_rotation () =
  let dir = temp_dir "rotate" in
  let rotations_seen = ref 0 in
  let j, recovery =
    Service.Journal.open_ ~max_bytes:512
      ~on_rotate:(fun () -> incr rotations_seen)
      ~dir ()
  in
  Alcotest.(check int) "fresh directory: nothing replayed" 0
    recovery.Service.Journal.replayed_ok;
  for i = 1 to 40 do
    Service.Journal.event j "tick" [ ("n", J.Int i) ]
  done;
  let rotations = Service.Journal.rotations j in
  Alcotest.(check bool) "the cap forced at least one rotation" true
    (rotations > 0);
  Alcotest.(check int) "on_rotate fired once per rotation" rotations
    !rotations_seen;
  Alcotest.(check bool) "previous journal kept for post-mortem" true
    (Sys.file_exists (Filename.concat dir "journal.prev.ndjson"));
  let live = (Unix.stat (Service.Journal.path j)).Unix.st_size in
  Alcotest.(check bool) "live journal bounded near the cap" true
    (live <= 512 + 256);
  Service.Journal.close j

(* ------------------------------------------------------------------ *)
(* Daemon-level composition                                            *)
(* ------------------------------------------------------------------ *)

let tiers_int stats k =
  Option.bind (J.member "tiers" stats) (fun t ->
      Option.bind (J.member k t) J.to_int)

let rec wait_for_upgrades c ~target deadline =
  let stats = ok_exn (Service.Client.stats c ()) in
  match tiers_int stats "upgrades_done" with
  | Some n when n >= target -> stats
  | _ ->
    if Unix.gettimeofday () > deadline then
      Alcotest.fail "tier upgrade did not land within the deadline"
    else begin
      Thread.delay 0.02;
      wait_for_upgrades c ~target deadline
    end

let check_bytes what (expected : A.compiled) (got : A.compiled) =
  Alcotest.(check int) (what ^ ": exit code") expected.A.exit_code got.A.exit_code;
  Alcotest.(check string) (what ^ ": stdout bytes") expected.A.output got.A.output;
  Alcotest.(check string)
    (what ^ ": stderr bytes") expected.A.diagnostics got.A.diagnostics

(* The satellite acceptance: every store failing as disk-full under
   concurrent traffic costs warm hits only — zero client-visible
   failures, byte-identical answers — and the stats surface the tripped
   breaker. *)
let test_daemon_disk_full_invisible () =
  let cache_dir = temp_dir "dfull" in
  let config = A.Config.default in
  let apps =
    List.filteri
      (fun i _ -> i < 4)
      (List.map (fun (a : Proxyapps.App.t) -> a.Proxyapps.App.name)
         Proxyapps.Apps.all)
  in
  Alcotest.(check int) "four distinct apps" 4 (List.length apps);
  let oneshots =
    List.map
      (fun app ->
        (app, A.compile_buffered ~config ~file:(app ^ ".momp") (app_source app)))
      apps
  in
  with_server ~injector:(inject "disk-full:1.0") ~cache_dir
    ~cache_max_bytes:2048
  @@ fun socket_path ->
  let results = Array.make (List.length apps) None in
  let threads =
    List.mapi
      (fun i app ->
        Thread.create
          (fun () ->
            Service.Client.with_connection ~socket_path @@ fun c ->
            results.(i) <-
              Some
                (Service.Client.compile c ~file:(app ^ ".momp") ~config
                   (app_source app)))
          ())
      apps
  in
  List.iter Thread.join threads;
  List.iteri
    (fun i (app, oneshot) ->
      match results.(i) with
      | None -> Alcotest.failf "%s: no reply" app
      | Some r ->
        check_bytes (app ^ " under injected disk-full") oneshot (ok_exn r))
    oneshots;
  Service.Client.with_connection ~socket_path @@ fun c ->
  let stats = ok_exn (Service.Client.stats c ()) in
  Alcotest.(check bool) "store failures surfaced" true
    (match storage_int stats [ "disk"; "store_failures" ] with
    | Some n -> n > 0
    | None -> false);
  Alcotest.(check (option int)) "breaker tripped once" (Some 1)
    (storage_int stats [ "disk"; "breaker_trips" ]);
  Alcotest.(check (option bool)) "writes disabled at stats time" (Some true)
    (storage_bool stats [ "disk"; "writes_disabled" ]);
  Alcotest.(check (option int)) "nothing reached the disk" (Some 0)
    (storage_int stats [ "disk"; "entries" ]);
  Alcotest.(check (option int)) "the flag echoes into stats" (Some 2048)
    (storage_int stats [ "disk"; "max_bytes" ])

(* A tiered daemon under a one-entry warm cache: both cold fast entries
   cannot coexist, so at least one upgrade promotes a key whose fast
   entry was already evicted — the replace re-inserts it and the entry
   still converges to the exact full-pipeline bytes. *)
let test_daemon_upgrade_survives_eviction () =
  let config = A.Config.(default |> optimized) in
  let app_a = "xsbench" and app_b = "su3bench" in
  let full_b =
    A.compile_buffered ~config ~file:(app_b ^ ".momp") (app_source app_b)
  in
  with_server ~tiered:true ~cache_max_entries:1 @@ fun socket_path ->
  Service.Client.with_connection ~socket_path @@ fun c ->
  let a =
    ok_exn
      (Service.Client.compile c ~file:(app_a ^ ".momp") ~config
         (app_source app_a))
  in
  Alcotest.(check int) "cold A answered" 0 a.A.exit_code;
  let b =
    ok_exn
      (Service.Client.compile c ~file:(app_b ^ ".momp") ~config
         (app_source app_b))
  in
  Alcotest.(check int) "cold B answered" 0 b.A.exit_code;
  let stats = wait_for_upgrades c ~target:2 (Unix.gettimeofday () +. 30.) in
  Alcotest.(check (option int)) "no failed upgrades" (Some 0)
    (tiers_int stats "upgrades_failed");
  Alcotest.(check bool) "the one-entry cap forced evictions" true
    (match storage_int stats [ "cache"; "evictions" ] with
    | Some n -> n >= 1
    | None -> false);
  Alcotest.(check (option int)) "cap echoed into stats" (Some 1)
    (storage_int stats [ "cache"; "max_entries" ]);
  (* ties drain FIFO (A then B), so B's promotion replaced last: its
     entry — re-inserted after eviction — must now hold full bytes *)
  let warm_b =
    ok_exn
      (Service.Client.compile c ~file:(app_b ^ ".momp") ~config
         (app_source app_b))
  in
  check_bytes "post-upgrade B is byte-identical to one-shot full" full_b warm_b

(* A tiered daemon restarted over the same --state-dir boots already
   knowing its hot keys: the drain checkpoints the hotness profile and
   the next create restores it. *)
let test_daemon_profile_restart_roundtrip () =
  let state_dir = temp_dir "hotprof" in
  let config = A.Config.(default |> optimized) in
  let app = "xsbench" in
  with_server ~tiered:true ~state_dir (fun socket_path ->
      Service.Client.with_connection ~socket_path @@ fun c ->
      let r =
        ok_exn
          (Service.Client.compile c ~file:(app ^ ".momp") ~config
             (app_source app))
      in
      Alcotest.(check int) "first life compiled" 0 r.A.exit_code);
  Alcotest.(check bool) "drain checkpointed the profile" true
    (Sys.file_exists (Filename.concat state_dir "hotness.json"));
  with_server ~tiered:true ~state_dir (fun socket_path ->
      Service.Client.with_connection ~socket_path @@ fun c ->
      let stats = ok_exn (Service.Client.stats c ()) in
      Alcotest.(check bool) "second life booted knowing its hot keys" true
        (match tiers_int stats "profile_restored" with
        | Some n -> n > 0
        | None -> false));
  (* an untiered daemon neither writes nor reads the profile *)
  let cold_dir = temp_dir "coldprof" in
  with_server ~state_dir:cold_dir (fun socket_path ->
      Service.Client.with_connection ~socket_path @@ fun c ->
      let r =
        ok_exn
          (Service.Client.compile c ~file:(app ^ ".momp") ~config
             (app_source app))
      in
      Alcotest.(check int) "untiered life compiled" 0 r.A.exit_code);
  Alcotest.(check bool) "untiered daemon writes no profile" false
    (Sys.file_exists (Filename.concat cold_dir "hotness.json"))

let suite =
  [
    Alcotest.test_case "cache/lru-entry-cap" `Quick test_cache_lru_entry_cap;
    Alcotest.test_case "cache/byte-cap-invariant" `Quick
      test_cache_byte_cap_invariant;
    Alcotest.test_case "cache/replace-reinserts-after-eviction" `Quick
      test_cache_replace_reinserts_after_eviction;
    Alcotest.test_case "disk/scrub-quarantines-and-ledgers" `Quick
      test_disk_scrub_quarantines_and_ledgers;
    Alcotest.test_case "disk/quota-evicts-oldest" `Quick
      test_disk_quota_evicts_oldest;
    Alcotest.test_case "disk/injected-full-trips-breaker" `Quick
      test_disk_full_injected_breaker;
    Alcotest.test_case "disk/breaker-recovers" `Quick test_disk_breaker_recovers;
    Alcotest.test_case "hotness/decay-on-overflow" `Quick
      test_hitcount_decay_on_overflow;
    Alcotest.test_case "hotness/profile-roundtrip" `Quick
      test_hitcount_profile_roundtrip;
    Alcotest.test_case "journal/midlife-rotation" `Quick
      test_journal_midlife_rotation;
    Alcotest.test_case "daemon/disk-full-never-client-visible" `Quick
      test_daemon_disk_full_invisible;
    Alcotest.test_case "daemon/upgrade-survives-eviction" `Quick
      test_daemon_upgrade_survives_eviction;
    Alcotest.test_case "daemon/profile-restart-roundtrip" `Quick
      test_daemon_profile_restart_roundtrip;
  ]

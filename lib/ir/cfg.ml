(* CFG utilities over a function: predecessors, reverse post-order,
   reachability, and iterative dominators (Cooper-Harvey-Kennedy style but on
   plain sets, which is fine at our scale). *)

module SM = Support.Util.String_map
module SS = Support.Util.String_set

type t = {
  func : Func.t;
  order : string list;  (* reverse post-order from entry *)
  preds : string list SM.t;
  succs : string list SM.t;
}

let compute (f : Func.t) =
  if Func.is_declaration f then
    Support.Util.failf "Cfg.compute: %s is a declaration" f.Func.name;
  let succs =
    List.fold_left (fun m b -> SM.add b.Block.label (Block.successors b) m) SM.empty f.blocks
  in
  let preds = ref SM.empty in
  List.iter (fun b -> preds := SM.add b.Block.label [] !preds) f.blocks;
  SM.iter
    (fun from tos ->
      List.iter
        (fun l ->
          match SM.find_opt l !preds with
          | Some ps -> preds := SM.add l (from :: ps) !preds
          | None -> Support.Util.failf "Cfg: branch to unknown block %s in %s" l f.Func.name)
        tos)
    succs;
  (* reverse post-order DFS from entry *)
  let visited = ref SS.empty in
  let order = ref [] in
  let rec dfs label =
    if not (SS.mem label !visited) then begin
      visited := SS.add label !visited;
      List.iter dfs (SM.find label succs);
      order := label :: !order
    end
  in
  dfs (Func.entry f).Block.label;
  { func = f; order = !order; preds = !preds; succs }

let reachable t = SS.of_list t.order
let is_reachable t label = List.mem label t.order

let preds t label = match SM.find_opt label t.preds with Some ps -> ps | None -> []
let succs t label = match SM.find_opt label t.succs with Some ss -> ss | None -> []

(* Dominator sets: dom(entry) = {entry}; dom(b) = {b} ∪ ⋂ dom(preds).
   Iterate to fixpoint over the reverse post-order. *)
let dominators t =
  let entry = (Func.entry t.func).Block.label in
  let all = SS.of_list t.order in
  let dom = ref (SM.singleton entry (SS.singleton entry)) in
  List.iter
    (fun l -> if l <> entry then dom := SM.add l all !dom)
    t.order;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        if l <> entry then begin
          let reachable_preds =
            List.filter (fun p -> SS.mem p all) (preds t l)
          in
          let meet =
            match reachable_preds with
            | [] -> SS.empty
            | p :: ps ->
              List.fold_left
                (fun acc p -> SS.inter acc (SM.find p !dom))
                (SM.find p !dom) ps
          in
          let next = SS.add l meet in
          if not (SS.equal next (SM.find l !dom)) then begin
            dom := SM.add l next !dom;
            changed := true
          end
        end)
      t.order
  done;
  !dom

let dominates dom ~by label =
  match SM.find_opt label dom with Some s -> SS.mem by s | None -> false

(* Map each reachable block label to its Block.t, in RPO. *)
let blocks_in_order t = List.map (Func.find_block_exn t.func) t.order

(* Delete blocks unreachable from entry; returns true if anything changed. *)
let prune_unreachable (f : Func.t) =
  let t = compute f in
  let keep = reachable t in
  let dead = List.filter (fun b -> not (SS.mem b.Block.label keep)) f.blocks in
  if dead = [] then false
  else begin
    Func.remove_blocks f (List.map (fun b -> b.Block.label) dead);
    true
  end

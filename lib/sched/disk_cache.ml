(* Directory-backed blob cache.  No Unix dependency: Sys + channels are
   enough for mkdir-p (via repeated Sys.mkdir), atomic publish (write a
   unique temp file, Sys.rename over the destination) and lookup.

   Entries are self-verifying: a digest header is prepended at store time
   and checked on every read.  An entry that fails the check — torn write,
   disk corruption, an injected bit-flip — is quarantined (moved aside, so
   a later run can inspect it) and reported as a miss: the cache heals by
   recomputing, it never serves corrupt data. *)

type t = {
  cache_dir : string;
  injector : Fault.Injector.t;
  on_corrupt : (key:string -> path:string -> unit) option;
  mutex : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable corrupt : int;
  mutable swept : int;
}

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755
    with Sys_error _ when Sys.file_exists path -> ()  (* lost a creation race *)
  end

(* Temp files are only ever alive between [Filename.temp_file] and the
   publishing [Sys.rename] — milliseconds.  A temp older than the age gate
   is an orphan from a writer that died mid-store; the gate is generous so
   a sweep never races a live concurrent writer. *)
let default_temp_age_s = 600.

let temp_prefix = "sched-cache"
let temp_suffix = ".tmp"

let is_temp_name name =
  let lp = String.length temp_prefix and ls = String.length temp_suffix in
  let ln = String.length name in
  ln > lp + ls
  && String.sub name 0 lp = temp_prefix
  && String.sub name (ln - ls) ls = temp_suffix

(* Move orphaned temps aside rather than deleting: like corrupt entries,
   the quarantine directory preserves the evidence for post-mortem. *)
let sweep_temps_in ~max_age_s dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | names ->
    let now = Unix.gettimeofday () in
    Array.fold_left
      (fun n name ->
        if not (is_temp_name name) then n
        else
          let path = Filename.concat dir name in
          match Unix.lstat path with
          | exception Unix.Unix_error _ -> n (* lost a race; already gone *)
          | st ->
            if
              st.Unix.st_kind = Unix.S_REG
              && now -. st.Unix.st_mtime >= max_age_s
            then begin
              let qdir = Filename.concat dir "quarantine" in
              mkdir_p qdir;
              match Sys.rename path (Filename.concat qdir name) with
              | () -> n + 1
              | exception Sys_error _ -> n (* another sweeper won the race *)
            end
            else n)
      0 names

let sweep_temps ?(max_age_s = default_temp_age_s) t =
  let n = sweep_temps_in ~max_age_s t.cache_dir in
  Mutex.lock t.mutex;
  t.swept <- t.swept + n;
  Mutex.unlock t.mutex;
  n

let create ?(injector = Fault.Injector.none) ?on_corrupt
    ?(temp_age_s = default_temp_age_s) ~dir () =
  mkdir_p dir;
  let t =
    {
      cache_dir = dir;
      injector;
      on_corrupt;
      mutex = Mutex.create ();
      hits = 0;
      misses = 0;
      corrupt = 0;
      swept = 0;
    }
  in
  ignore (sweep_temps ~max_age_s:temp_age_s t);
  t

let dir t = t.cache_dir

(* keys are Cache.key digests, but sanitize anyway so a stray caller cannot
   escape the cache directory *)
let path_of t key =
  let safe =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c | _ -> '_')
      key
  in
  Filename.concat t.cache_dir safe

let count_hit t ok =
  Mutex.lock t.mutex;
  if ok then t.hits <- t.hits + 1 else t.misses <- t.misses + 1;
  Mutex.unlock t.mutex

(* Entry format: "sched-blob-v1:" ^ md5-hex(payload) ^ "\n" ^ payload.
   The magic doubles as a format version; headerless files (from an older
   layout or a foreign writer) fail verification like corrupt ones. *)
let header_magic = "sched-blob-v1:"
let digest_hex_len = 32
let header_len = String.length header_magic + digest_hex_len + 1

let encode_entry data = header_magic ^ Digest.to_hex (Digest.string data) ^ "\n" ^ data

let decode_entry raw =
  if
    String.length raw >= header_len
    && String.sub raw 0 (String.length header_magic) = header_magic
    && raw.[header_len - 1] = '\n'
  then begin
    let digest = String.sub raw (String.length header_magic) digest_hex_len in
    let data = String.sub raw header_len (String.length raw - header_len) in
    if String.equal digest (Digest.to_hex (Digest.string data)) then Some data else None
  end
  else None

(* Move a failed entry aside rather than deleting it: the quarantine
   directory preserves the evidence for post-mortem without ever being
   consulted by lookups. *)
let quarantine t ~key path =
  Mutex.lock t.mutex;
  t.corrupt <- t.corrupt + 1;
  Mutex.unlock t.mutex;
  let qdir = Filename.concat t.cache_dir "quarantine" in
  mkdir_p qdir;
  (try Sys.rename path (Filename.concat qdir (Filename.basename path))
   with Sys_error _ -> ()  (* lost a race with another reader; already moved *));
  match t.on_corrupt with Some f -> f ~key ~path | None -> ()

let find t ~key =
  let path = path_of t key in
  if Sys.file_exists path then begin
    let raw = In_channel.with_open_bin path In_channel.input_all in
    match decode_entry raw with
    | Some data ->
      count_hit t true;
      Some data
    | None ->
      quarantine t ~key path;
      count_hit t false;
      None
  end
  else begin
    count_hit t false;
    None
  end

(* Flip one payload bit after the digest was computed: the entry is
   well-formed on disk but fails verification on the next read. *)
let corrupt_entry entry =
  let b = Bytes.of_string entry in
  let pos = min (Bytes.length b - 1) header_len in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
  Bytes.to_string b

let store t ~key ~data =
  let path = path_of t key in
  let entry = encode_entry data in
  let entry =
    if Fault.Injector.fire t.injector Fault.Injector.Cache_corrupt then
      corrupt_entry entry
    else entry
  in
  (* Filename.temp_file picks a name unique across processes; the rename is
     same-directory, so the publish is atomic.  A crash between create and
     rename orphans the temp — the age-gated startup sweep reclaims it. *)
  let tmp = Filename.temp_file ~temp_dir:t.cache_dir temp_prefix temp_suffix in
  Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc entry);
  Sys.rename tmp path

let find_or_compute t ~key f =
  match find t ~key with
  | Some data -> data
  | None ->
    let data = f () in
    store t ~key ~data;
    data

let with_lock t f =
  Mutex.lock t.mutex;
  let v = f () in
  Mutex.unlock t.mutex;
  v

let hits t = with_lock t (fun () -> t.hits)
let misses t = with_lock t (fun () -> t.misses)
let corrupt t = with_lock t (fun () -> t.corrupt)
let swept t = with_lock t (fun () -> t.swept)

(** Call graph over a MiniIR module.  Indirect call sites conservatively
    point at every address-taken function. *)

type t = {
  m : Ir.Irmod.t;
  callees : Support.Util.String_set.t Support.Util.String_map.t;
  callers : Support.Util.String_set.t Support.Util.String_map.t;
  has_indirect_site : Support.Util.String_set.t;
      (** functions containing an indirect call *)
  address_taken : Support.Util.String_set.t;
}

val compute : Ir.Irmod.t -> t

val callees : t -> string -> Support.Util.String_set.t
val callers : t -> string -> Support.Util.String_set.t
val is_address_taken : t -> string -> bool

val reachable_from : t -> string list -> Support.Util.String_set.t
(** Transitive closure of callees from the roots (roots included). *)

val reaching_kernels : t -> Support.Util.String_set.t Support.Util.String_map.t
(** For every function, the set of kernels that may transitively reach it
    (runtime-call folding requires all reaching kernels to agree). *)

val sccs : t -> string list list
(** Strongly connected components in reverse topological order (callees
    before callers). *)

(** Build configurations of the evaluation (Section V / Figure 11 legends). *)

type build =
  | Llvm12  (** legacy globalization, no OpenMP-aware middle end *)
  | Dev_noopt  (** simplified globalization, explicit OpenMP opts disabled *)
  | Dev of Openmpopt.Pass_manager.options  (** simplified + a pass subset *)
  | Cuda  (** kernel-style build of the CUDA source *)

type t = {
  label : string;
  build : build;
  inject : Fault.Injector.spec list;
      (** armed fault sites; the runner derives a per-(job, attempt)
          injector from these so batch results are schedule-independent *)
}

val dev : Openmpopt.Pass_manager.options -> build

val with_inject : Fault.Injector.spec list -> t -> t
(** The same configuration with fault injection armed.  Injection joins the
    cache key (via the derived injector's fingerprint), so injected and
    clean runs never share cached results. *)

val build_fingerprint : build -> string
(** Content identity of a build for the scheduler's result cache.  Excludes
    the display label: configs that differ only in label share cache
    entries. *)

(** Named option subsets mirroring the bar labels of Figure 11. *)

val only_h2s : Openmpopt.Pass_manager.options
val h2s2 : Openmpopt.Pass_manager.options
val h2s2_rtc : Openmpopt.Pass_manager.options
val h2s2_rtc_csm : Openmpopt.Pass_manager.options
val h2s2_rtc_spmd : Openmpopt.Pass_manager.options
val dev_full : Openmpopt.Pass_manager.options

val llvm12 : t
val no_opt : t
val heap_2_stack : t
val h2s2_cfg : t
val h2s2_rtc_cfg : t
val h2s2_rtc_csm_cfg : t
val h2s2_rtc_spmd_cfg : t
val dev0 : t
val cuda : t

val fig11_configs : string -> t list
(** The configuration set of each application's Figure 11 plot ("we
    restricted each plot to the configurations that impact performance"). *)

val fig10_configs : string -> t list

(** The structured error taxonomy of the whole compile-and-simulate stack.

    Every failure a user can observe — from a lexer error to a simulated
    barrier-divergence deadlock — is one [t]: a kind (the taxonomy), the
    pipeline phase that produced it, an optional source location, a
    human-readable message and, when backtrace recording is on, the raw
    backtrace captured at the raise point.  docs/ROBUSTNESS.md tabulates the
    kind → exit-code → JSON mapping. *)

(** Which layer of the stack the error escaped from. *)
type phase =
  | Lexing
  | Parsing
  | Lowering  (** MiniOMP → MiniIR codegen *)
  | Verifying
  | Optimizing  (** the OpenMPOpt pass pipeline *)
  | Simulating
  | Scheduling  (** the batch driver / domain pool *)
  | Caching
  | Driver  (** argument handling, I/O *)
  | Serving  (** the persistent compile service ([mompd]) *)

type kind =
  | Lex
  | Parse
  | Codegen
  | Verify
  | Pass_crash of { pass : string; round : int }
  | Sim_trap  (** dynamic simulation error: bad memory, unknown call, trap *)
  | Oom  (** device heap or host allocation exhausted *)
  | Shared_budget_exceeded
      (** shared-memory budget exhausted with no fallback possible (the
          normal path degrades to the device heap and is NOT an error) *)
  | Deadlock of { barrier : string }
      (** true barrier divergence; [barrier] is the "func/block" site(s) the
          blocked threads are parked at *)
  | Timeout of { seconds : float }
      (** simulation fuel exhausted ([seconds = 0.]) or a watchdog fired *)
  | Cache_corrupt
  | Overload of { pending : int; capacity : int }
      (** the compile service shed this request: [pending] jobs were already
          admitted against a limit of [capacity].  Transient by design —
          clients retry with backoff once the queue drains. *)
  | Crash_loop of { restarts : int; window_s : float }
      (** the daemon supervisor opened its circuit breaker: the serve loop
          crashed [restarts] times within [window_s] seconds.  NOT transient
          — the daemon is sick; clients degrade to the in-process path. *)
  | Bad_request
      (** a service request the protocol layer rejected: unparseable JSON,
          an unsupported version, an unknown operation or a missing field *)
  | Internal  (** an escaping exception: always a bug worth a backtrace *)

type t = {
  kind : kind;
  phase : phase;
  loc : Support.Loc.t option;
  peer : string option;
      (** the remote endpoint (shard socket path) a transport failure was
          observed against — fleet-mode failures name the shard, not just
          "daemon unreachable".  [None] for every local error. *)
  message : string;
  backtrace : string option;  (** raise-point backtrace, when recorded *)
}

exception Error of t
(** The one structured exception layers raise across module boundaries. *)

val make :
  kind ->
  phase:phase ->
  ?loc:Support.Loc.t ->
  ?peer:string ->
  ?backtrace:string ->
  string ->
  t

val raise_error : kind -> phase:phase -> ?loc:Support.Loc.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Format a message and raise [Error]. *)

val kind_name : kind -> string
(** Stable lowercase name, e.g. ["deadlock"], ["pass-crash"]. *)

val phase_name : phase -> string

val exit_code : t -> int
(** Process exit code of the kind (stable, documented in ROBUSTNESS.md);
    distinct ranges per family: 10-19 compile, 20-29 simulate, 30-39
    infrastructure, 40-49 service (40 overload, 41 crash-loop, 42
    bad-request), 70 internal. *)

val is_transient : t -> bool
(** Whether a bounded retry is worthwhile: timeouts and allocation failures
    are transient (another attempt re-consults the fault injector / runs
    under different pressure); miscompiles and parse errors are not. *)

val transient_exn : exn -> bool
(** [is_transient] lifted to exceptions; false for anything that is not an
    [Error]. *)

val to_string : t -> string
(** Stable one-line rendering ["phase error[kind] at loc via peer: message"],
    without the backtrace — this is the byte-stable diagnostic CI compares
    (the [via peer] segment appears only on transport errors, which never
    enter compiled bytes). *)

val to_json : t -> Observe.Json.t
(** {"kind"; "phase"; "exit_code"; "message"; "loc"?; "peer"?;
    "backtrace"?} *)

val of_exn : phase:phase -> exn -> Printexc.raw_backtrace -> t
(** Classify an arbitrary exception caught at a layer boundary.  [Error t]
    passes through (filling in the backtrace if it has none); anything else
    becomes [Internal] with the backtrace preserved.  Layer-specific
    exceptions (frontend, simulator) are classified by
    [Harness.Errors.classify], which wraps this. *)

(* Harness: configuration sets, relative-performance computation, and the
   table renderers (smoke + shape assertions at tiny scale). *)

let machine = Gpusim.Machine.test_machine
let scale = Proxyapps.App.Tiny

let test_config_sets () =
  List.iter
    (fun app ->
      let configs = Harness.Config.fig11_configs app in
      Alcotest.(check bool)
        (app ^ " has an LLVM 12 baseline")
        true
        (List.exists (fun c -> c.Harness.Config.label = "LLVM 12") configs);
      Alcotest.(check bool)
        (app ^ " has the dev build")
        true
        (List.exists (fun c -> c.Harness.Config.label = "LLVM Dev 0") configs))
    [ "xsbench"; "rsbench"; "su3bench"; "miniqmc" ]

let test_relative () =
  let app = Proxyapps.Apps.find_exn "xsbench" in
  let baseline = Harness.Runner.run ~machine ~scale app Harness.Config.llvm12 in
  let dev = Harness.Runner.run ~machine ~scale app Harness.Config.dev0 in
  match Harness.Runner.relative ~baseline dev with
  | Some r -> Alcotest.(check bool) "relative positive" true (r > 0.0)
  | None -> Alcotest.fail "relative performance unavailable"

let test_su3_shape () =
  (* the headline result: SPMDzation gives an order-of-magnitude speedup on
     the CPU-style SU3Bench kernel (Fig. 11c) *)
  let app = Proxyapps.Apps.find_exn "su3bench" in
  let baseline = Harness.Runner.run ~machine ~scale app Harness.Config.llvm12 in
  let no_opt = Harness.Runner.run ~machine ~scale app Harness.Config.no_opt in
  let dev = Harness.Runner.run ~machine ~scale app Harness.Config.dev0 in
  let csm = Harness.Runner.run ~machine ~scale app Harness.Config.h2s2_rtc_csm_cfg in
  let cuda = Harness.Runner.run ~machine ~scale app Harness.Config.cuda in
  let rel m =
    match Harness.Runner.relative ~baseline m with
    | Some r -> r
    | None -> Alcotest.fail "missing measurement"
  in
  Alcotest.(check bool) "no-opt is a regression" true (rel no_opt < 1.0);
  Alcotest.(check bool) "SPMDzation beats CSM" true (rel dev > rel csm);
  Alcotest.(check bool) "SPMDzation is a substantial win" true (rel dev > 2.0);
  Alcotest.(check bool) "CUDA is the watermark" true (rel cuda > rel dev)

let test_miniqmc_ordering () =
  let app = Proxyapps.Apps.find_exn "miniqmc" in
  let r cfg =
    let baseline = Harness.Runner.run ~machine ~scale app Harness.Config.llvm12 in
    match
      Harness.Runner.relative ~baseline (Harness.Runner.run ~machine ~scale app cfg)
    with
    | Some r -> r
    | None -> Alcotest.fail "missing measurement"
  in
  let no_opt = r Harness.Config.no_opt in
  let h2s = r Harness.Config.heap_2_stack in
  let h2s2 = r Harness.Config.h2s2_cfg in
  let spmd = r Harness.Config.dev0 in
  Alcotest.(check bool) "no-opt slowest" true (no_opt < h2s2);
  Alcotest.(check bool) "h2s alone is not enough (Fig. 11d)" true (h2s < h2s2);
  Alcotest.(check bool) "full pipeline fastest" true (spmd >= h2s2)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_tables_render () =
  let fig9 = Harness.Tables.fig9 ~machine ~scale () in
  Alcotest.(check bool) "fig9 mentions all apps" true
    (List.for_all (contains fig9) [ "xsbench"; "rsbench"; "su3bench"; "miniqmc" ]);
  let fig11 = Harness.Tables.fig11 ~machine ~scale (Proxyapps.Apps.find_exn "xsbench") in
  Alcotest.(check bool) "fig11 has the baseline row" true (contains fig11 "LLVM 12");
  Alcotest.(check bool) "fig11 reports no mismatches" false (contains fig11 "MISMATCH")

let suite =
  [
    Alcotest.test_case "config sets" `Quick test_config_sets;
    Alcotest.test_case "relative performance" `Quick test_relative;
    Alcotest.test_case "su3 shape" `Slow test_su3_shape;
    Alcotest.test_case "miniqmc ordering" `Slow test_miniqmc_ordering;
    Alcotest.test_case "tables render" `Slow test_tables_render;
  ]

(** The persistent compile daemon behind [mompd].

    One server owns a Unix-domain listening socket, a {!Sched.Pool} of
    worker domains, and warm caches shared across every request: an
    in-memory content-addressed result cache plus (optionally) the same
    on-disk cache [mompc --cache-dir] uses — so a repeated compile is a
    cache hit whichever client sends it, and a service restart still
    starts warm from disk.

    Concurrency model: the accept loop hands each connection to a
    lightweight thread that parses newline-delimited JSON requests
    ({!Protocol}) and blocks on the pool for compile work; compiles
    themselves run on the pool's domains.  Requests from one connection
    are answered in order; connections are independent.

    Robustness: admission control bounds the number of compile requests
    in flight — request [capacity + 1] is shed immediately with a
    structured [Overload] (exit 40) instead of queueing without bound —
    and an optional per-request watchdog settles a hung compile as a
    structured [Timeout] (exit 24), so one poisoned job never wedges the
    daemon.  No client input can raise out of a connection thread: torn,
    garbage and oversized frames get structured [Bad_request] answers
    (exit 42) and, at worst, a severed connection.

    Crash containment: created standalone, the server owns its socket and
    journal and releases both on exit.  Created by {!Supervisor} (with
    [~listen_fd]/[~journal]/[~supervision]), it borrows them — a
    serve-loop crash severs live connections, stops the pool, and
    re-raises with the listening socket still bound, so the supervisor
    restarts the loop without dropping the address.

    Durability: with a [state_dir], every admitted compile is journaled
    ([begin] on admission, [settle] on response — see {!Journal}), and
    the startup recovery scan's counters surface in [health]/[stats].

    Graceful drain: a shutdown request, {!stop}, or SIGTERM-via-[stop]
    flips the server into draining — new compile admissions are shed with
    [Overload], requests already being answered finish (bounded by
    [drain_deadline_s]), then remaining connections are severed and the
    pool stops. *)

type config = {
  socket_path : string;
  domains : int;  (** pool worker domains (at least 1) *)
  capacity : int;
      (** max compile requests admitted concurrently; 0 sheds everything
          (useful to test client backoff) *)
  watchdog_s : float option;  (** per-request wall-time bound *)
  cache_dir : string option;  (** warm the disk cache shared with [mompc] *)
  state_dir : string option;  (** request journal + recovery scan home *)
  injector : Fault.Injector.t;
      (** arms the service fault sites ([conn-drop], [partial-frame],
          [slow-client], [daemon-kill]) for the chaos harness *)
  drain_deadline_s : float;  (** bound on the graceful-drain wait *)
  tiered : bool;
      (** tiered compilation (docs/SCHEDULER.md): answer cold
          full-pipeline requests from the fast tier, tier-tag the cache
          entry, and let a background worker re-run the full pipeline
          (hottest key first, per-key {!Observe.Hitcount} counts) and
          atomically replace it.  Off by default: fast-tier answers are
          not byte-identical to one-shot [mompc] until the upgrade lands,
          so the byte-identity gates run untiered.  With a [state_dir],
          the per-key hotness profile is checkpointed on drain and on
          mid-life journal rotations, and reloaded at boot. *)
  cache_max_entries : int option;
      (** LRU entry cap on the in-memory result cache (evictions counted
          in the [storage] stats section); [None] = unbounded. *)
  cache_max_bytes : int option;
      (** approximate-byte LRU cap on the in-memory result cache, and the
          byte quota of the disk cache (oldest entries evicted on
          store); [None] = unbounded. *)
  journal_max_bytes : int option;
      (** mid-life journal rotation cap ({!Journal.open_}); [None] =
          rotate only at boot. *)
}

val default_config : config
(** [./mompd.sock], 2 domains, capacity [4 * domains], no watchdog, no
    disk cache, no journal, no injected faults, 5s drain deadline, not
    tiered, every storage cap unbounded. *)

(** Restart/breaker counters shared between a {!Supervisor} and every
    incarnation it creates; read by [health] and [stats] answers.
    [on_journal_rotate] is the current incarnation's profile-checkpoint
    hook — the journal outlives servers, so its rotation callback
    indirects through here. *)
type supervision = {
  mutable restarts : int;
  mutable breaker_open : bool;
  mutable last_crash : string option;
  mutable on_journal_rotate : unit -> unit;
}

val new_supervision : unit -> supervision

type t

val bind_listener : string -> Unix.file_descr
(** Bind and listen on a Unix-domain socket path, replacing a stale
    socket file.  Raises [Unix.Unix_error] on failure, [Invalid_argument]
    if the path exists and is not a socket.  {!create} calls this;
    {!Supervisor} calls it once and shares the fd across incarnations. *)

val create :
  ?listen_fd:Unix.file_descr ->
  ?journal:Journal.t * Journal.recovery ->
  ?supervision:supervision ->
  config ->
  t
(** Standalone (no optionals): bind the socket, open the journal from
    [state_dir], spawn the pool; the server releases what it opened.
    Supervised: borrow the given listener/journal/supervision — they
    survive this incarnation.  Raises [Unix.Unix_error] if the socket
    cannot be bound. *)

val serve_forever : t -> unit
(** Accept and serve until a [shutdown] request (or {!stop}) arrives,
    then drain gracefully (see the module header).  A serve-loop crash
    severs connections, stops the pool, and re-raises for the supervisor;
    owned resources (standalone mode) are always released. *)

val stop : t -> unit
(** Ask the accept loop to exit and the server to drain, as if a shutdown
    request had arrived.  Thread-safe, idempotent, and safe from a signal
    handler; [serve_forever] still performs the drain. *)

val stats_json : t -> Observe.Json.t
(** The live counters served to a [stats] request (schema 2): requests
    by kind and outcome, shed count, cache hit/miss/entries, pool
    statistics, uptime, a ["tiers"] object (enabled flag, fast-tier
    answers served, distinct hot keys, upgrade queue depth and
    queued/done/failed counts, profile keys restored at boot and
    checkpoints written), a ["storage"] object (in-memory cache
    entries/bytes/evictions + caps, disk-cache ledger bytes/entries,
    evictions, scrub/quarantine counts, store failures, write-breaker
    state, journal rotations — see docs/API.md) and a ["service"] object
    (restarts, breaker, draining, journal-replay counters, swept temp
    files, injected drops). *)

val health_json : t -> Observe.Json.t
(** The [health] answer (schema 2): ["status"] ("ok"/"draining"),
    protocol version, uptime, in-flight count, capacity, plus the same
    members as the ["service"] stats object. *)

val run : config -> unit
(** [create] + [serve_forever] (standalone). *)

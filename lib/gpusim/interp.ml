(* The SIMT interpreter.

   Threads are simulated with a run-to-block discipline: each thread executes
   until it finishes or blocks on a synchronization point (barrier, the
   worker state machine, or a parallel-region join), accumulating its own
   cycle clock.  Synchronization points align the clocks of the released
   threads to the maximum arrival time plus the synchronization cost, which
   yields a causally consistent timing model without lock-step emulation.

   The device runtime's executable semantics (__kmpc_* interception) live
   here; its *static* semantics (what the optimizer may assume) live in
   [Devrt.Registry]. *)

open Ir
open Rvalue

(* All abnormal terminations raise [Fault.Ompgpu_error.Error] with a
   simulation-phase payload: [Sim_trap] for trap instructions and injected
   traps, [Timeout] for fuel exhaustion, [Deadlock] (with the offending
   barrier site) for true barrier divergence.  [Rvalue.Sim_error] still
   covers dynamic value errors; harness boundaries classify it. *)

let sim_error kind fmt = Fault.Ompgpu_error.raise_error kind ~phase:Fault.Ompgpu_error.Simulating fmt

type status =
  | Runnable
  | Wait_work  (* worker parked in the state machine *)
  | Wait_join  (* main thread waiting for workers to finish a region *)
  | In_barrier
  | Finished

type frame_kind =
  | Normal
  | Parallel_body_generic  (* main thread running the region it published *)
  | Parallel_body_spmd  (* SPMD-mode region body: implicit barrier on return *)
  | Parallel_body_nested

(* Per-function execution plan, built once per interpreter and shared by
   every frame of that function: the register-file size (registers live in a
   flat array, not a hashtable) and a label -> block table with a dense
   per-interpreter block id (the divergence tables key on ids, not on
   "func/block" strings). *)
type bentry = { bblock : Block.t; bid : int }

type fplan = { pbound : int; pblocks : (string, bentry) Hashtbl.t }

(* Distinguished "register never written" marker; physical equality only. *)
let unset : Rvalue.t = Fn "\000unset"

type frame = {
  ffunc : Func.t;
  fplan : fplan;
  mutable fblock : Block.t;
  mutable fbid : int;  (* id of [fblock] in [fplan] *)
  mutable fcursor : Instr.t list;  (* instructions left in [fblock] *)
  fregs : Rvalue.t array;
  fargs : Rvalue.t array;
  flocal_base : int;
  fkind : frame_kind;
  (* register of the calling instruction expecting our return value *)
  fret_reg : int option;
}

type thread = {
  gid : int;
  tid : int;
  mutable stack : frame list;
  mutable status : status;
  mutable clock : int;
  mutable local_sp : int;
  mutable level : int;  (* parallel nesting level *)
  mutable last_work_gen : int;
  (* value delivered to the blocked runtime call on wakeup *)
  mutable wake_value : Rvalue.t;
  (* result register of the runtime call this thread is blocked in *)
  mutable blocked_reg : int option;
  (* true when parked in __kmpc_worker_wait_id (id protocol, post-CSM) *)
  mutable wait_wants_id : bool;
  (* "func/block" of the barrier this thread is parked in ("" when not);
     the deadlock detector reports it on barrier divergence *)
  mutable barrier_site : string;
  (* device-heap bytes this thread currently holds (globalization spills) *)
  mutable heap_live : int;
  (* per branch site (block id), how many times this thread has executed
     it; indexes the team's divergence table *)
  site_execs : (int, int) Hashtbl.t;
}

type work = {
  wfn : string;
  wid : int64;
  wargs : Rvalue.t;
  wactive : int;  (* number of participating threads, including main *)
  wgen : int;
}

type team = {
  team_idx : int;  (* index within the launch (0..nteams-1) *)
  team_uid : int;  (* globally unique id, keys the shared memory arena *)
  threads : thread array;
  mutable shared_sp : int;
  mutable shared_high : int;
  mutable work : (work, unit) Either.t option;  (* Left w = published work *)
  mutable work_gen : int;
  mutable join_pending : int;
  mutable terminating : bool;
  mutable barrier_waiting : thread list;
  mutable exec_spmd : bool;
  mutable is_cuda : bool;
  (* shared-stack regions allocated AoS by __kmpc_alloc_shared: accesses
     into them are uncoalesced *)
  mutable uncoalesced : (int * int) list;
  (* first target taken at (branch site, per-thread execution index) — the
     key packs [block id lsl 12 lor index] (index < divergence_window): a
     later thread choosing differently is a divergent-branch event *)
  branch_first : (int, string) Hashtbl.t;
  launch_teams : int;
  launch_threads : int;
}

type launch_stats = {
  kernel_name : string;
  mutable cycles : int;  (* modeled kernel time *)
  mutable team_cycles_total : int;
  mutable instructions : int;
  mutable loads_global : int;
  mutable loads_shared : int;
  mutable loads_local : int;
  mutable stores_global : int;
  mutable stores_shared : int;
  mutable stores_local : int;
  mutable atomics_global : int;
  mutable atomics_shared : int;
  mutable divergent_branches : int;
  mutable runtime_calls : int;
  mutable barriers : int;
  mutable indirect_calls : int;
  mutable shared_bytes : int;  (* static + stack high water, max over teams *)
  mutable shared_fallbacks : int;
    (* shared-memory budget misses served from the device heap instead of
       aborting (the paper's globalization fallback path) *)
  mutable heap_high_water : int;
  mutable registers : int;
  mutable teams : int;
  mutable threads_per_team : int;
}

type t = {
  m : Irmod.t;
  machine : Machine.t;
  mem : Mem.t;
  mutable trace : Rvalue.t list;  (* __devrt_trace output, newest first *)
  mutable kernel_stats : launch_stats list;  (* newest first *)
  (* head of [kernel_stats], cached: read on every executed instruction *)
  mutable cur_stats : launch_stats option;
  team_uid_gen : Support.Util.Id_gen.t;
  mutable fuel : int;
  injector : Fault.Injector.t;
  (* the team the currently-simulated thread belongs to (None = host) *)
  mutable cur_team : team option;
  (* name -> function, built once; [Irmod.find_func] scans a list and the
     interpreter resolves a callee on every call instruction *)
  funcs : (string, Func.t) Hashtbl.t;
  plans : (string, fplan) Hashtbl.t;  (* per-function plans, built lazily *)
  mutable bid_gen : int;  (* next block id for plans *)
}

let create ?(fuel = 200_000_000) ?(injector = Fault.Injector.none)
    ?scratch (machine : Machine.t) (m : Irmod.t) =
  let mem = Mem.create ~injector ?scratch machine in
  Mem.layout_module mem m;
  let funcs = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace funcs f.Func.name f) m.Irmod.funcs;
  {
    m;
    machine;
    mem;
    trace = [];
    kernel_stats = [];
    cur_stats = None;
    team_uid_gen = Support.Util.Id_gen.create ();
    fuel;
    injector;
    cur_team = None;
    funcs;
    plans = Hashtbl.create 64;
    bid_gen = 0;
  }

(* Hand the memory arenas back to the scratch pool (when one was attached).
   The interpreter must not be used afterwards. *)
let release t = Mem.release t.mem

let find_func t name = Hashtbl.find_opt t.funcs name

let plan_for t (f : Func.t) =
  match Hashtbl.find_opt t.plans f.Func.name with
  | Some p -> p
  | None ->
    let bound = ref 0 in
    let pblocks = Hashtbl.create 16 in
    List.iter
      (fun (b : Block.t) ->
        let id = t.bid_gen in
        t.bid_gen <- t.bid_gen + 1;
        Hashtbl.replace pblocks b.Block.label { bblock = b; bid = id };
        List.iter
          (fun (i : Instr.t) -> if i.Instr.id >= !bound then bound := i.Instr.id + 1)
          b.Block.instrs)
      f.Func.blocks;
    let p = { pbound = max 1 !bound; pblocks } in
    Hashtbl.replace t.plans f.Func.name p;
    p

let costs t = t.machine.Machine.costs

(* ------------------------------------------------------------------ *)
(* Value evaluation                                                    *)
(* ------------------------------------------------------------------ *)

let cur_frame th =
  match th.stack with
  | f :: _ -> f
  | [] -> error "thread %d has no frame" th.gid

let team_for_globals t th =
  ignore th;
  match t.cur_team with Some team -> team.team_uid | None -> -1

let eval t th (v : Value.t) : Rvalue.t =
  match v with
  | Value.Const c -> of_const c
  | Value.Reg id ->
    let f = cur_frame th in
    let rv =
      if id >= 0 && id < Array.length f.fregs then Array.unsafe_get f.fregs id
      else unset
    in
    if rv == unset then error "read of unset register %%%d in @%s" id f.ffunc.Func.name
    else rv
  | Value.Arg i -> (cur_frame th).fargs.(i)
  | Value.Global name -> P (Mem.global_addr t.mem name ~team:(team_for_globals t th))
  | Value.Func name -> Fn name

let set_reg th id rv = (cur_frame th).fregs.(id) <- rv

(* ------------------------------------------------------------------ *)
(* Arithmetic                                                          *)
(* ------------------------------------------------------------------ *)

let exec_bin op ty a b =
  let open Instr in
  if Types.is_float ty then begin
    let x = as_float a and y = as_float b in
    let r =
      match op with
      | Fadd -> x +. y
      | Fsub -> x -. y
      | Fmul -> x *. y
      | Fdiv -> x /. y
      | _ -> error "integer binop on float type"
    in
    F (if Types.equal ty Types.F32 then to_f32 r else r)
  end
  else begin
    let x = as_int a and y = as_int b in
    (* unsigned operations must see the zero-extended value of the width *)
    let unsigned v =
      match ty with
      | Types.I1 -> Int64.logand v 1L
      | Types.I8 -> Int64.logand v 0xFFL
      | Types.I32 -> Int64.logand v 0xFFFFFFFFL
      | _ -> v
    in
    let r =
      match op with
      | Add -> Int64.add x y
      | Sub -> Int64.sub x y
      | Mul -> Int64.mul x y
      | Sdiv -> if y = 0L then error "division by zero" else Int64.div x y
      | Srem -> if y = 0L then error "remainder by zero" else Int64.rem x y
      | Udiv ->
        if y = 0L then error "division by zero"
        else Int64.unsigned_div (unsigned x) (unsigned y)
      | Urem ->
        if y = 0L then error "remainder by zero"
        else Int64.unsigned_rem (unsigned x) (unsigned y)
      | And -> Int64.logand x y
      | Or -> Int64.logor x y
      | Xor -> Int64.logxor x y
      | Shl -> Int64.shift_left x (Int64.to_int y land 63)
      | Lshr -> Int64.shift_right_logical (unsigned x) (Int64.to_int y land 63)
      | Ashr -> Int64.shift_right x (Int64.to_int y land 63)
      | Fadd | Fsub | Fmul | Fdiv -> error "float binop on integer type"
    in
    of_int64 (truncate_to ty r)
  end

let ptr_as_bits = function
  | P p -> Mem.encode_ptr p
  | Fn name -> Int64.of_int (1 + Hashtbl.hash name)  (* nonzero: never null *)
  | v -> as_int v

let exec_icmp cc ty a b =
  let open Instr in
  let x, y =
    if Types.is_pointer ty then (ptr_as_bits a, ptr_as_bits b) else (as_int a, as_int b)
  in
  let r =
    match cc with
    | Eq -> x = y
    | Ne -> x <> y
    | Slt -> x < y
    | Sle -> x <= y
    | Sgt -> x > y
    | Sge -> x >= y
    | Ult -> Int64.unsigned_compare x y < 0
    | Ule -> Int64.unsigned_compare x y <= 0
    | Ugt -> Int64.unsigned_compare x y > 0
    | Uge -> Int64.unsigned_compare x y >= 0
  in
  of_bool r

let exec_fcmp cc a b =
  let open Instr in
  let x = as_float a and y = as_float b in
  let r =
    match cc with
    | Oeq -> x = y
    | One -> x <> y && not (Float.is_nan x || Float.is_nan y)
    | Olt -> x < y
    | Ole -> x <= y
    | Ogt -> x > y
    | Oge -> x >= y
  in
  of_bool r

let exec_cast op to_ty v =
  let open Instr in
  match op with
  | Zext | Sext -> of_int64 (truncate_to to_ty (as_int v))
  | Trunc -> of_int64 (truncate_to to_ty (as_int v))
  | Sitofp ->
    let f = Int64.to_float (as_int v) in
    F (if Types.equal to_ty Types.F32 then to_f32 f else f)
  | Fptosi -> of_int64 (truncate_to to_ty (Int64.of_float (as_float v)))
  | Fpext -> F (as_float v)
  | Fptrunc -> F (to_f32 (as_float v))
  | Bitcast -> (
    match (v, to_ty) with
    | F f, Types.I64 -> I (Int64.bits_of_float f)
    | F f, Types.I32 -> I (Int64.of_int32 (Int32.bits_of_float f))
    | I i, Types.F64 -> F (Int64.float_of_bits i)
    | I i, Types.F32 -> F (Int32.float_of_bits (Int64.to_int32 i))
    | v, _ -> v)
  | Spacecast -> v

(* ------------------------------------------------------------------ *)
(* Cost accounting                                                     *)
(* ------------------------------------------------------------------ *)

let access_cost t (p : ptr) =
  let c = costs t in
  match p.sp with
  | Sglobal ->
    if Mem.is_cached t.mem p.addr then c.Machine.global_cached_access
    else c.Machine.global_access
  | Sshared uid -> (
    match t.cur_team with
    | Some team
      when team.team_uid = uid
           && List.exists (fun (a, b) -> p.addr >= a && p.addr < b) team.uncoalesced ->
      c.Machine.shared_uncoalesced_access
    | _ -> c.Machine.shared_access)
  | Slocal _ -> c.Machine.local_access

let stats_top t = t.cur_stats

let count_load t (p : ptr) =
  match stats_top t with
  | None -> ()
  | Some s -> (
    match p.sp with
    | Sglobal -> s.loads_global <- s.loads_global + 1
    | Sshared _ -> s.loads_shared <- s.loads_shared + 1
    | Slocal _ -> s.loads_local <- s.loads_local + 1)

let count_store t (p : ptr) =
  match stats_top t with
  | None -> ()
  | Some s -> (
    match p.sp with
    | Sglobal -> s.stores_global <- s.stores_global + 1
    | Sshared _ -> s.stores_shared <- s.stores_shared + 1
    | Slocal _ -> s.stores_local <- s.stores_local + 1)

let count_atomic t (p : ptr) =
  match stats_top t with
  | None -> ()
  | Some s -> (
    match p.sp with
    | Sglobal -> s.atomics_global <- s.atomics_global + 1
    | Sshared _ -> s.atomics_shared <- s.atomics_shared + 1
    | Slocal _ -> ()  (* thread-private: not a contended operation *))

(* Divergence detection.  The run-to-block scheduler never aligns thread
   PCs, so SIMT divergence is reconstructed structurally: per branch site,
   the n-th execution by every thread of a team should take the same target;
   a thread disagreeing with the first-recorded target at its index is one
   divergent-branch event.  Tracking stops past [divergence_window]
   executions per site to bound the table on long-running uniform loops
   (divergence there repeats the early pattern). *)
let divergence_window = 4096

let note_branch t th ~target =
  match t.cur_team with
  | Some team when Array.length team.threads > 1 -> (
    match stats_top t with
    | None -> ()
    | Some s ->
      let site = (cur_frame th).fbid in
      let n = match Hashtbl.find_opt th.site_execs site with Some n -> n | None -> 0 in
      Hashtbl.replace th.site_execs site (n + 1);
      if n < divergence_window then begin
        let key = (site lsl 12) lor n in
        match Hashtbl.find_opt team.branch_first key with
        | None -> Hashtbl.add team.branch_first key target
        | Some first when String.equal first target -> ()
        | Some _ -> s.divergent_branches <- s.divergent_branches + 1
      end)
  | _ -> ()

let charge th cycles = th.clock <- th.clock + cycles

(* ------------------------------------------------------------------ *)
(* Synchronization mechanics                                           *)
(* ------------------------------------------------------------------ *)

let barrier_expected team =
  if team.exec_spmd then Array.length team.threads
  else
    match team.work with
    | Some (Either.Left w) -> w.wactive
    | Some (Either.Right ()) | None -> 1

(* The "func/block" site a thread currently executes — the barrier id the
   deadlock detector reports.  Region-exit implicit barriers run after the
   frame was popped, so fall back to the caller frame (or a fixed tag). *)
let thread_site th =
  match th.stack with
  | f :: _ -> f.ffunc.Func.name ^ "/" ^ f.fblock.Block.label
  | [] -> "<region-exit>"

(* Thread [th] arrives at a team barrier.  Returns [true] if the thread may
   continue immediately (it was the last to arrive or is alone). *)
let barrier_enter t team th =
  let expected = barrier_expected team in
  (match stats_top t with Some s -> s.barriers <- s.barriers + 1 | None -> ());
  if expected <= 1 then begin
    charge th (costs t).Machine.barrier;
    true
  end
  else begin
    team.barrier_waiting <- th :: team.barrier_waiting;
    if List.length team.barrier_waiting >= expected then begin
      let arrival =
        List.fold_left (fun acc th' -> max acc th'.clock) 0 team.barrier_waiting
      in
      let release = arrival + (costs t).Machine.barrier in
      List.iter
        (fun th' ->
          th'.clock <- release;
          th'.status <- Runnable;
          th'.barrier_site <- "")
        team.barrier_waiting;
      team.barrier_waiting <- [];
      true
    end
    else begin
      th.status <- In_barrier;
      th.barrier_site <- thread_site th;
      false
    end
  end

(* Publish a parallel region from the main thread (generic mode, level 0). *)
let publish_work t team th ~fn ~id ~args ~requested =
  let nthreads = Array.length team.threads in
  let active = if requested > 0 then min requested nthreads else nthreads in
  charge th (costs t).Machine.parallel_publish;
  (* the generic-mode runtime releases work through a team-wide dispatch
     barrier (one arrival per thread); its time is already modeled by the
     publish/resume costs, but it counts as a barrier in the cost model —
     this is the synchronization SPMDization deletes *)
  (match stats_top t with
  | Some s -> s.barriers <- s.barriers + nthreads
  | None -> ());
  team.work_gen <- team.work_gen + 1;
  team.work <-
    Some (Either.Left { wfn = fn; wid = id; wargs = args; wactive = active; wgen = team.work_gen });
  team.join_pending <- active - 1;  (* workers; main participates directly *)
  (* wake parked workers that participate *)
  Array.iter
    (fun w ->
      if w.tid > 0 && w.tid < active && w.status = Wait_work then begin
        w.status <- Runnable;
        w.clock <- max w.clock (th.clock + (costs t).Machine.worker_resume);
        w.wake_value <- (if w.wait_wants_id then I id else Fn fn);
        w.last_work_gen <- team.work_gen;
        w.level <- 1
      end)
    team.threads

let finish_join t team =
  team.work <- None;
  let main = team.threads.(0) in
  if main.status = Wait_join then begin
    let worker_max =
      Array.fold_left
        (fun acc w -> if w.tid > 0 then max acc w.clock else acc)
        0 team.threads
    in
    main.status <- Runnable;
    main.clock <- max main.clock worker_max + (costs t).Machine.parallel_join
  end;
  (* the matching join side of the dispatch barrier (see publish_work) *)
  match stats_top t with
  | Some s -> s.barriers <- s.barriers + Array.length team.threads
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Function call machinery                                             *)
(* ------------------------------------------------------------------ *)

let push_frame t th ?(kind = Normal) ?ret_reg (f : Func.t) args =
  if Func.is_declaration f then error "call to undefined function @%s" f.Func.name;
  let plan = plan_for t f in
  let entry = Func.entry f in
  let eb =
    match Hashtbl.find_opt plan.pblocks entry.Block.label with
    | Some eb -> eb
    | None -> error "entry block of @%s missing from its plan" f.Func.name
  in
  let frame =
    {
      ffunc = f;
      fplan = plan;
      fblock = entry;
      fbid = eb.bid;
      fcursor = entry.Block.instrs;
      fregs = Array.make plan.pbound unset;
      fargs = Array.of_list args;
      flocal_base = th.local_sp;
      fkind = kind;
      fret_reg = ret_reg;
    }
  in
  th.stack <- frame :: th.stack

(* Returns [false] when the thread has fully finished. *)
let pop_frame t team_opt th (ret : Rvalue.t) =
  match th.stack with
  | [] -> false
  | frame :: rest ->
    th.local_sp <- frame.flocal_base;
    th.stack <- rest;
    (match frame.fkind with
    | Normal -> ()
    | Parallel_body_generic -> (
      th.level <- th.level - 1;
      match team_opt with
      | Some team ->
        if team.join_pending > 0 then th.status <- Wait_join else finish_join t team
      | None -> ())
    | Parallel_body_spmd -> (
      th.level <- th.level - 1;
      match team_opt with
      | Some team -> ignore (barrier_enter t team th)
      | None -> ())
    | Parallel_body_nested -> th.level <- th.level - 1);
    (match (rest, frame.fret_reg) with
    | caller :: _, Some reg -> caller.fregs.(reg) <- ret
    | _ -> ());
    rest <> []

(* ------------------------------------------------------------------ *)
(* Device runtime interception                                         *)
(* ------------------------------------------------------------------ *)

(* result of a runtime call *)
type rt_result =
  | Done of Rvalue.t  (* call completed, thread continues *)
  | Blocked  (* thread parked; the call's result arrives via wake_value *)

let is_main_thread th = th.tid = 0

(* Allocate from the device heap, modeling the concurrent footprint: on
   real hardware every resident team runs all of its threads at once, and
   each executes the same allocation sites; the simulator serializes
   threads, so the footprint is reconstructed from the per-thread live
   bytes scaled by the number of concurrently allocating threads. *)
let device_heap_alloc t team th size =
  let p, granted = Mem.heap_alloc t.mem size in
  th.heap_live <- th.heap_live + granted;
  let resident_teams = max 1 (min team.launch_teams t.machine.Machine.num_sms) in
  let allocating_threads =
    if team.exec_spmd || th.level > 0 then Array.length team.threads else 1
  in
  let footprint = th.heap_live * allocating_threads * resident_teams in
  (match stats_top t with
  | Some s -> if footprint > s.heap_high_water then s.heap_high_water <- footprint
  | None -> ());
  if footprint > t.machine.Machine.heap_bytes then
    raise
      (Mem.Out_of_memory
         (Printf.sprintf
            "device heap exhausted: %d teams x %d threads x %d live bytes exceeds %d"
            resident_teams allocating_threads th.heap_live
            t.machine.Machine.heap_bytes));
  p

let device_heap_free t th addr size =
  let size8 = Support.Util.round_up_to (max 8 size) ~multiple:8 in
  th.heap_live <- max 0 (th.heap_live - size8);
  Mem.heap_free_block t.mem addr size

let count_shared_fallback t =
  match stats_top t with
  | Some s -> s.shared_fallbacks <- s.shared_fallbacks + 1
  | None -> ()

(* The shared-memory budget check of an allocation site.  Injection at
   [Shared_budget] simulates exhaustion: the allocation must then take the
   same graceful heap-fallback path a genuinely full budget takes — the
   run continues (slower), it does not abort. *)
let shared_budget_allows t fits =
  fits && not (Fault.Injector.fire t.injector Fault.Injector.Shared_budget)

let alloc_shared_storage t team th size =
  let c = costs t in
  let in_sequential_main =
    (not team.exec_spmd) && is_main_thread th && th.level = 0
  in
  let size_tax = size / 8 in
  if in_sequential_main then begin
    (* bump the team's dynamic data-sharing stack; it is a small carve-out,
       so large allocations fall back to the device heap *)
    let size8 = Support.Util.round_up_to (max 8 size) ~multiple:8 in
    let dyn_used = team.shared_sp - t.mem.Mem.static_shared_size in
    if
      shared_budget_allows t
        (dyn_used + size8 <= t.machine.Machine.dyn_shared_stack_bytes
        && team.shared_sp + size8 <= t.machine.Machine.shared_bytes_per_team)
    then begin
      charge th (c.Machine.alloc_shared_main + size_tax);
      let addr = team.shared_sp in
      team.shared_sp <- team.shared_sp + size8;
      if team.shared_sp > team.shared_high then team.shared_high <- team.shared_sp;
      team.uncoalesced <- (addr, addr + size8) :: team.uncoalesced;
      P { sp = Sshared team.team_uid; addr }
    end
    else begin
      (* budget miss (real or injected): graceful device-heap fallback *)
      count_shared_fallback t;
      charge th (c.Machine.alloc_shared_parallel + size_tax);
      P (device_heap_alloc t team th size)
    end
  end
  else begin
    (* per-thread allocation in a parallel context: contended global heap *)
    charge th (c.Machine.alloc_shared_parallel + size_tax);
    P (device_heap_alloc t team th size)
  end

let free_shared_storage t team th ptr size =
  let c = costs t in
  charge th c.Machine.free_shared;
  match ptr with
  | P { sp = Sshared uid; addr } when uid = team.team_uid ->
    let size8 = Support.Util.round_up_to (max 8 size) ~multiple:8 in
    (* LIFO pop when possible; otherwise just account *)
    if addr + size8 = team.shared_sp then team.shared_sp <- addr
  | P ({ sp = Sglobal; _ } as p) -> device_heap_free t th p.addr size
  | P { sp = Slocal _; _ } -> ()  (* legacy SPMD fast path: plain alloca *)
  | _ -> ()

(* Legacy push: one aggregated allocation.  In a sequential main region it
   behaves like alloc_shared; in a parallel context the warp-coalesced
   implementation amortizes the runtime call across the warp and still
   places data in shared memory when it fits. *)
let legacy_push t team th size =
  let c = costs t in
  let size8 = Support.Util.round_up_to (max 8 size) ~multiple:8 in
  let fits =
    shared_budget_allows t
      (team.shared_sp + size8 <= t.machine.Machine.shared_bytes_per_team)
  in
  if fits then begin
    let amortized =
      if th.level > 0 || team.exec_spmd then max 16 (c.Machine.push_stack / 4)
      else c.Machine.push_stack
    in
    charge th amortized;
    let addr = team.shared_sp in
    team.shared_sp <- team.shared_sp + size8;
    if team.shared_sp > team.shared_high then team.shared_high <- team.shared_sp;
    P { sp = Sshared team.team_uid; addr }
  end
  else begin
    count_shared_fallback t;
    charge th c.Machine.push_stack;
    P (device_heap_alloc t team th size)
  end

let trace_value t rv = t.trace <- rv :: t.trace

let math1 name x =
  match name with
  | "__math_sqrt" -> sqrt x
  | "__math_sin" -> sin x
  | "__math_cos" -> cos x
  | "__math_exp" -> exp x
  | "__math_log" -> log x
  | "__math_fabs" -> Float.abs x
  | _ -> error "unknown math builtin %s" name

(* Execute a device runtime call on a device thread. *)
let device_runtime_call t team th name (args : Rvalue.t list) : rt_result =
  let c = costs t in
  (match stats_top t with Some s -> s.runtime_calls <- s.runtime_calls + 1 | None -> ());
  match (name, args) with
  | "__kmpc_target_init", [ _mode ] ->
    let cost =
      if team.is_cuda then c.Machine.target_init_cuda
      else if team.exec_spmd then c.Machine.target_init_spmd
      else c.Machine.target_init_generic
    in
    charge th cost;
    Done (I (if (not team.exec_spmd) && is_main_thread th then -1L else Int64.of_int th.tid))
  | "__kmpc_target_deinit", [ _mode ] ->
    charge th c.Machine.target_deinit;
    if not team.exec_spmd then begin
      (* main thread terminates the worker state machine *)
      team.terminating <- true;
      Array.iter
        (fun w ->
          if w.tid > 0 && w.status = Wait_work then begin
            w.status <- Runnable;
            w.clock <- max w.clock (th.clock + c.Machine.worker_resume);
            (* null fn pointer / id -2: exit the state machine *)
            w.wake_value <- (if w.wait_wants_id then I (-2L) else I 0L)
          end)
        team.threads
    end;
    Done Undef
  | "__kmpc_parallel_51", [ fnv; idv; argsv; numv ] -> (
    let fname =
      match fnv with
      | Fn f -> f
      | v when is_null v -> ""
      | _ -> error "parallel_51: bad function operand"
    in
    let resolve_fn () =
      match find_func t fname with
      | Some f -> f
      | None -> error "parallel_51: unknown function %s" fname
    in
    if th.level > 0 then begin
      (* nested parallelism executes sequentially on the encountering thread *)
      charge th c.Machine.call;
      th.level <- th.level + 1;
      push_frame t th ~kind:Parallel_body_nested (resolve_fn ()) [ argsv ];
      Done Undef
    end
    else if team.exec_spmd then begin
      (* SPMD: every thread runs the region directly; implicit barrier at end *)
      charge th c.Machine.call;
      th.level <- th.level + 1;
      push_frame t th ~kind:Parallel_body_spmd (resolve_fn ()) [ argsv ];
      Done Undef
    end
    else begin
      (* generic mode level 0: publish to the worker state machine *)
      publish_work t team th ~fn:fname ~id:(as_int idv) ~args:argsv
        ~requested:(Int64.to_int (as_int numv));
      th.level <- th.level + 1;
      push_frame t th ~kind:Parallel_body_generic (resolve_fn ()) [ argsv ];
      Done Undef
    end)
  | "__kmpc_worker_wait", [] | "__kmpc_worker_wait_id", [] -> (
    let want_id = String.equal name "__kmpc_worker_wait_id" in
    if team.terminating then
      Done (if want_id then I (-2L) else I 0L)
    else
      match team.work with
      | Some (Either.Left w) when w.wgen > th.last_work_gen && th.tid < w.wactive ->
        th.last_work_gen <- w.wgen;
        charge th c.Machine.worker_resume;
        th.level <- 1;  (* the worker is now inside the parallel region *)
        Done (if want_id then I w.wid else Fn w.wfn)
      | _ ->
        th.status <- Wait_work;
        th.wait_wants_id <- want_id;
        Blocked)
  | "__kmpc_get_parallel_args", [] -> (
    match team.work with
    | Some (Either.Left w) -> Done w.wargs
    | _ -> error "get_parallel_args outside a region")
  | "__kmpc_get_parallel_id", [] -> (
    match team.work with
    | Some (Either.Left w) -> Done (I w.wid)
    | _ -> error "get_parallel_id outside a region")
  | "__kmpc_get_parallel_fn", [] -> (
    match team.work with
    | Some (Either.Left w) -> Done (Fn w.wfn)
    | _ -> error "get_parallel_fn outside a region")
  | "__kmpc_worker_done", [] ->
    charge th c.Machine.worker_done;
    th.level <- 0;
    team.join_pending <- team.join_pending - 1;
    if team.join_pending <= 0 then finish_join t team;
    Done Undef
  | "__kmpc_alloc_shared", [ size ] ->
    Done (alloc_shared_storage t team th (Int64.to_int (as_int size)))
  | "__kmpc_free_shared", [ ptr; size ] ->
    free_shared_storage t team th ptr (Int64.to_int (as_int size));
    Done Undef
  | "__kmpc_data_sharing_push_stack", [ size; _use_shared ] ->
    Done (legacy_push t team th (Int64.to_int (as_int size)))
  | "__kmpc_data_sharing_pop_stack", [ ptr ] ->
    (match ptr with
    | P { sp = Sshared uid; addr } when uid = team.team_uid ->
      charge th c.Machine.pop_stack;
      if addr < team.shared_sp then team.shared_sp <- addr
    | P ({ sp = Sglobal; _ } as p) ->
      charge th c.Machine.pop_stack;
      (* we do not know the size; free a conservative 8 bytes *)
      device_heap_free t th p.addr 8
    | _ -> ());
    Done Undef
  | "__kmpc_is_spmd_exec_mode", [] ->
    charge th c.Machine.runtime_query;
    Done (I (if team.exec_spmd then 1L else 0L))
  | "__kmpc_parallel_level", [] ->
    charge th c.Machine.runtime_query;
    Done (I (Int64.of_int (if team.exec_spmd then max 1 th.level else th.level)))
  | "__gpu_thread_id", [] ->
    charge th c.Machine.alu;
    Done (I (Int64.of_int th.tid))
  | "__gpu_num_threads", [] ->
    charge th c.Machine.alu;
    let n =
      if team.exec_spmd then Array.length team.threads
      else
        match team.work with
        | Some (Either.Left w) when th.level > 0 -> w.wactive
        | _ -> Array.length team.threads
    in
    Done (I (Int64.of_int n))
  | "__gpu_team_id", [] ->
    charge th c.Machine.alu;
    Done (I (Int64.of_int team.team_idx))
  | "__gpu_num_teams", [] ->
    charge th c.Machine.alu;
    Done (I (Int64.of_int team.launch_teams))
  | "__kmpc_data_sharing_mode_check", [] ->
    charge th c.Machine.runtime_query_opaque;
    Done (I (if team.exec_spmd then 1L else 0L))
  | "omp_get_thread_num", [] ->
    charge th c.Machine.runtime_query_opaque;
    Done (I (Int64.of_int (if team.exec_spmd || th.level > 0 then th.tid else 0)))
  | "omp_get_num_threads", [] ->
    charge th c.Machine.runtime_query_opaque;
    let n =
      if team.exec_spmd then Array.length team.threads
      else
        match team.work with
        | Some (Either.Left w) when th.level > 0 -> w.wactive
        | _ -> Array.length team.threads
    in
    Done (I (Int64.of_int n))
  | "omp_get_team_num", [] ->
    charge th c.Machine.runtime_query_opaque;
    Done (I (Int64.of_int team.team_idx))
  | "omp_get_num_teams", [] ->
    charge th c.Machine.runtime_query_opaque;
    Done (I (Int64.of_int team.launch_teams))
  | "__kmpc_get_warp_size", [] ->
    charge th c.Machine.runtime_query;
    Done (I (Int64.of_int t.machine.Machine.warp_size))
  | "__kmpc_get_hardware_num_threads", [] ->
    charge th c.Machine.runtime_query;
    Done (I (Int64.of_int (Array.length team.threads)))
  | "__kmpc_barrier", [] ->
    ignore (barrier_enter t team th);
    Done Undef
  | "__devrt_trace", [ v ] ->
    charge th c.Machine.trace;
    trace_value t (I (as_int v));
    Done Undef
  | "__devrt_trace_f64", [ v ] ->
    charge th c.Machine.trace;
    trace_value t (F (as_float v));
    Done Undef
  | _, _ -> (
    match name with
    | "__math_pow" -> (
      charge th c.Machine.math_pow;
      match args with
      | [ x; y ] -> Done (F (Float.pow (as_float x) (as_float y)))
      | _ -> error "pow arity")
    | "__math_fmin" -> (
      charge th c.Machine.alu;
      match args with
      | [ x; y ] -> Done (F (Float.min (as_float x) (as_float y)))
      | _ -> error "fmin arity")
    | "__math_fmax" -> (
      charge th c.Machine.alu;
      match args with
      | [ x; y ] -> Done (F (Float.max (as_float x) (as_float y)))
      | _ -> error "fmax arity")
    | "__math_sqrtf" -> (
      charge th c.Machine.math_sqrt;
      match args with
      | [ x ] -> Done (F (to_f32 (sqrt (as_float x))))
      | _ -> error "sqrtf arity")
    | "__math_sqrt" ->
      charge th c.Machine.math_sqrt;
      (match args with [ x ] -> Done (F (math1 name (as_float x))) | _ -> error "arity")
    | "__math_sin" | "__math_cos" | "__math_exp" | "__math_log" ->
      charge th c.Machine.math_trig;
      (match args with [ x ] -> Done (F (math1 name (as_float x))) | _ -> error "arity")
    | "__math_fabs" ->
      charge th c.Machine.alu;
      (match args with [ x ] -> Done (F (math1 name (as_float x))) | _ -> error "arity")
    | _ -> error "unimplemented runtime function %s" name)

(* ------------------------------------------------------------------ *)
(* Instruction stepping                                                *)
(* ------------------------------------------------------------------ *)

let bin_cost t (op : Instr.bin) =
  let c = costs t in
  match op with
  | Instr.Add | Instr.Sub | Instr.And | Instr.Or | Instr.Xor | Instr.Shl
  | Instr.Lshr | Instr.Ashr ->
    c.Machine.alu
  | Instr.Mul -> c.Machine.imul
  | Instr.Sdiv | Instr.Srem | Instr.Udiv | Instr.Urem -> c.Machine.idiv
  | Instr.Fadd | Instr.Fsub -> c.Machine.fadd
  | Instr.Fmul -> c.Machine.fmul
  | Instr.Fdiv -> c.Machine.fdiv

(* Host-side subset of the runtime: math, tracing, and trivial queries.
   Synchronization primitives are meaningless on the single host thread. *)
let host_runtime_call t th name (args : Rvalue.t list) : Rvalue.t =
  ignore th;
  match (name, args) with
  | "__devrt_trace", [ v ] ->
    trace_value t (I (as_int v));
    Undef
  | "__devrt_trace_f64", [ v ] ->
    trace_value t (F (as_float v));
    Undef
  | "__math_pow", [ x; y ] -> F (Float.pow (as_float x) (as_float y))
  | "__math_fmin", [ x; y ] -> F (Float.min (as_float x) (as_float y))
  | "__math_fmax", [ x; y ] -> F (Float.max (as_float x) (as_float y))
  | "__math_sqrtf", [ x ] -> F (to_f32 (sqrt (as_float x)))
  | ("__math_sqrt" | "__math_sin" | "__math_cos" | "__math_exp" | "__math_log"
    | "__math_fabs"), [ x ] ->
    F (math1 name (as_float x))
  | "omp_get_thread_num", [] | "__gpu_thread_id", [] | "__gpu_team_id", []
  | "omp_get_team_num", [] ->
    I 0L
  | "omp_get_num_threads", [] | "__gpu_num_threads", [] | "__gpu_num_teams", []
  | "omp_get_num_teams", [] | "__kmpc_parallel_level", [] ->
    I 1L
  | "__kmpc_is_spmd_exec_mode", [] | "__kmpc_data_sharing_mode_check", [] -> I 0L
  | "__kmpc_barrier", [] -> Undef
  | "__kmpc_alloc_shared", [ size ] ->
    let p, _ = Mem.heap_alloc t.mem (Int64.to_int (as_int size)) in
    P p
  | "__kmpc_free_shared", [ ptr; size ] ->
    (match ptr with
    | P { sp = Sglobal; addr } -> Mem.heap_free_block t.mem addr (Int64.to_int (as_int size))
    | _ -> ());
    Undef
  | _ -> error "runtime call %s is not available on the host" name

(* mutable hook filled in below to break the recursion with kernel launch *)
let launch_hook :
    (t -> Func.t -> Rvalue.t list -> unit) ref =
  ref (fun _ _ _ -> error "launch hook not installed")

(* Execute one instruction; the caller already advanced the frame cursor
   past it. *)
let exec_instr t (team_opt : team option) th (i : Instr.t) =
  let c = costs t in
  (match stats_top t with Some s -> s.instructions <- s.instructions + 1 | None -> ());
  t.fuel <- t.fuel - 1;
  if t.fuel <= 0 then
    sim_error
      (Fault.Ompgpu_error.Timeout { seconds = 0. })
      "simulation fuel exhausted (infinite loop?)";
  if Fault.Injector.fire t.injector Fault.Injector.Sim_trap then
    sim_error Fault.Ompgpu_error.Sim_trap
      "injected trap in @%s (thread %d)"
      (cur_frame th).ffunc.Func.name th.gid;
  let ev v = eval t th v in
  match i.Instr.kind with
  | Instr.Alloca (ty, n) ->
    charge th c.Machine.alu;
    let size = Support.Util.round_up_to (max 1 (Types.size_of ty * n)) ~multiple:8 in
    let addr = th.local_sp in
    if addr + size > t.machine.Machine.local_bytes_per_thread then
      error "thread %d local stack overflow" th.gid;
    th.local_sp <- th.local_sp + size;
    set_reg th i.Instr.id (P { sp = Slocal th.gid; addr })
  | Instr.Load (ty, pv) ->
    let p = as_ptr (ev pv) in
    charge th (access_cost t p);
    count_load t p;
    set_reg th i.Instr.id (Mem.read t.mem ~current:th.gid p ty)
  | Instr.Store (ty, v, pv) ->
    let p = as_ptr (ev pv) in
    charge th (access_cost t p);
    count_store t p;
    Mem.write t.mem ~current:th.gid p ty (ev v)
  | Instr.Gep (_, base, off) ->
    charge th c.Machine.alu;
    let p = as_ptr (ev base) in
    let o = Int64.to_int (as_int (ev off)) in
    set_reg th i.Instr.id (P { p with addr = p.addr + o })
  | Instr.Bin (op, ty, a, b) ->
    charge th (bin_cost t op);
    set_reg th i.Instr.id (exec_bin op ty (ev a) (ev b))
  | Instr.Icmp (cc, ty, a, b) ->
    charge th c.Machine.alu;
    set_reg th i.Instr.id (exec_icmp cc ty (ev a) (ev b))
  | Instr.Fcmp (cc, _, a, b) ->
    charge th c.Machine.alu;
    set_reg th i.Instr.id (exec_fcmp cc (ev a) (ev b))
  | Instr.Cast (op, ty, v) ->
    charge th c.Machine.cast;
    set_reg th i.Instr.id (exec_cast op ty (ev v))
  | Instr.Select (_, cv, a, b) ->
    charge th c.Machine.alu;
    set_reg th i.Instr.id (if as_int (ev cv) <> 0L then ev a else ev b)
  | Instr.Atomicrmw (op, ty, pv, v) ->
    let p = as_ptr (ev pv) in
    charge th
      (match p.sp with
      | Sglobal -> c.Machine.atomic_global
      | Sshared _ -> c.Machine.atomic_shared
      | Slocal _ -> c.Machine.local_access);
    count_atomic t p;
    let old = Mem.read t.mem ~current:th.gid p ty in
    let next =
      match op with
      | Instr.A_add -> exec_bin Instr.Add ty old (ev v)
      | Instr.A_fadd -> exec_bin Instr.Fadd ty old (ev v)
      | Instr.A_min ->
        if Types.is_float ty then F (Float.min (as_float old) (as_float (ev v)))
        else I (min (as_int old) (as_int (ev v)))
      | Instr.A_max ->
        if Types.is_float ty then F (Float.max (as_float old) (as_float (ev v)))
        else I (max (as_int old) (as_int (ev v)))
      | Instr.A_exchange -> ev v
      | Instr.A_cas -> ev v
    in
    Mem.write t.mem ~current:th.gid p ty next;
    set_reg th i.Instr.id old
  | Instr.Call (_, callee, argvs) -> (
    let args = List.map ev argvs in
    let dispatch name =
      match Devrt.Registry.lookup name with
      | Some _ -> (
        match team_opt with
        | Some team -> (
          match device_runtime_call t team th name args with
          | Done rv -> if Instr.has_result i then set_reg th i.Instr.id rv
          | Blocked ->
            th.blocked_reg <- (if Instr.has_result i then Some i.Instr.id else None))
        | None -> (
          match host_runtime_call t th name args with
          | rv -> if Instr.has_result i then set_reg th i.Instr.id rv))
      | None -> (
        match find_func t name with
        | Some f when Func.is_kernel f && team_opt = None ->
          !launch_hook t f args
        | Some f when not (Func.is_declaration f) ->
          charge th c.Machine.call;
          push_frame t th
            ?ret_reg:(if Instr.has_result i then Some i.Instr.id else None)
            f args
        | Some f when Func.is_kernel f ->
          error "kernel @%s launched from device code" f.Func.name
        | Some _ -> error "call to external function @%s" name
        | None -> error "call to unknown function @%s" name)
    in
    match callee with
    | Instr.Direct name -> dispatch name
    | Instr.Indirect fv -> (
      charge th c.Machine.indirect_call;
      (match stats_top t with
      | Some s -> s.indirect_calls <- s.indirect_calls + 1
      | None -> ());
      match ev fv with
      | Fn name -> dispatch name
      | v -> error "indirect call through non-function value %s" (Fmt.str "%a" pp v)))

(* Execute the terminator of the current block. *)
let exec_term t th (b : Block.t) =
  let c = costs t in
  let goto label =
    let frame = cur_frame th in
    match Hashtbl.find_opt frame.fplan.pblocks label with
    | Some be ->
      frame.fblock <- be.bblock;
      frame.fbid <- be.bid;
      frame.fcursor <- be.bblock.Block.instrs
    | None ->
      Support.Util.failf "Func.find_block: no block %s in %s" label
        frame.ffunc.Func.name
  in
  ignore c;
  match b.Block.term with
  | Block.Br l ->
    charge th c.Machine.alu;
    goto l;
    `Continue
  | Block.Cbr (v, l1, l2) ->
    charge th c.Machine.alu;
    let target = if as_int (eval t th v) <> 0L then l1 else l2 in
    note_branch t th ~target;
    goto target;
    `Continue
  | Block.Switch (v, cases, default) ->
    charge th c.Machine.alu;
    let x = as_int (eval t th v) in
    let target =
      match List.assoc_opt x cases with Some l -> l | None -> default
    in
    note_branch t th ~target;
    goto target;
    `Continue
  | Block.Ret v ->
    let rv = match v with Some v -> eval t th v | None -> Undef in
    let team_opt = t.cur_team in
    if pop_frame t team_opt th rv then `Continue else `Finished
  | Block.Unreachable -> error "executed unreachable in @%s" (cur_frame th).ffunc.Func.name

(* Run [th] until it blocks or finishes. *)
let run_thread t (team_opt : team option) th =
  (* deliver the result of a call the thread was parked in *)
  (match th.blocked_reg with
  | Some reg when th.status = Runnable ->
    set_reg th reg th.wake_value;
    th.blocked_reg <- None
  | _ -> ());
  let continue_ = ref true in
  while !continue_ && th.status = Runnable do
    match th.stack with
    | [] ->
      th.status <- Finished;
      continue_ := false
    | frame :: _ -> (
      match frame.fcursor with
      | i :: rest ->
        frame.fcursor <- rest;
        exec_instr t team_opt th i
      | [] -> (
        match exec_term t th frame.fblock with
        | `Continue -> ()
        | `Finished ->
          th.status <- Finished;
          continue_ := false))
  done

(* ------------------------------------------------------------------ *)
(* Team simulation                                                     *)
(* ------------------------------------------------------------------ *)

(* Diagnose a stuck team: no thread runnable, yet not all finished.  The
   prime suspect is barrier divergence — some threads parked in a barrier
   whose remaining arrivals can never come because their teammates finished
   or parked elsewhere.  Report the offending barrier site(s) with arrival
   accounting so the user can find the divergent branch. *)
let deadlock_diagnosis team =
  let count p = Array.fold_left (fun n th -> if p th then n + 1 else n) 0 team.threads in
  let in_barrier = count (fun th -> th.status = In_barrier) in
  if in_barrier > 0 then begin
    let sites = Hashtbl.create 4 in
    Array.iter
      (fun th ->
        if th.status = In_barrier then begin
          let site = if th.barrier_site = "" then "<unknown>" else th.barrier_site in
          let n = match Hashtbl.find_opt sites site with Some n -> n | None -> 0 in
          Hashtbl.replace sites site (n + 1)
        end)
      team.threads;
    let site_list =
      List.sort compare (Hashtbl.fold (fun site n acc -> (site, n) :: acc) sites [])
    in
    let barrier = String.concat ", " (List.map fst site_list) in
    let detail =
      String.concat "; "
        (List.map (fun (site, n) -> Printf.sprintf "%d at %s" n site) site_list)
    in
    sim_error
      (Fault.Ompgpu_error.Deadlock { barrier })
      "barrier divergence in team %d: %s waiting for %d arrival(s), but %d \
       teammate(s) finished and %d parked elsewhere — a barrier on a \
       divergent path is never released"
      team.team_idx detail (barrier_expected team)
      (count (fun th -> th.status = Finished))
      (count (fun th -> th.status = Wait_work || th.status = Wait_join))
  end
  else
    sim_error
      (Fault.Ompgpu_error.Deadlock { barrier = "<worker-state-machine>" })
      "team %d: no runnable thread (%d waiting for work, %d waiting to join, \
       %d finished) — the worker state machine cannot make progress"
      team.team_idx
      (count (fun th -> th.status = Wait_work))
      (count (fun th -> th.status = Wait_join))
      (count (fun th -> th.status = Finished))

let run_team t team =
  let prev = t.cur_team in
  t.cur_team <- Some team;
  let all_done () = Array.for_all (fun th -> th.status = Finished) team.threads in
  let guard = ref 0 in
  while not (all_done ()) do
    incr guard;
    if !guard > 100_000_000 then
      sim_error
        (Fault.Ompgpu_error.Deadlock { barrier = "<scheduler>" })
        "team %d scheduling did not converge after %d steps" team.team_idx !guard;
    (* pick the runnable thread with the smallest clock *)
    let best = ref None in
    Array.iter
      (fun th ->
        if th.status = Runnable then
          match !best with
          | Some b when b.clock <= th.clock -> ()
          | _ -> best := Some th)
      team.threads;
    match !best with
    | Some th -> run_thread t (Some team) th
    | None ->
      (* nobody runnable: every non-finished thread is parked *)
      let parked_workers =
        Array.exists (fun th -> th.status = Wait_work) team.threads
      in
      if parked_workers && team.terminating then
        Array.iter
          (fun th -> if th.status = Wait_work then th.status <- Finished)
          team.threads
      else deadlock_diagnosis team
  done;
  t.cur_team <- prev

(* ------------------------------------------------------------------ *)
(* Kernel launch                                                       *)
(* ------------------------------------------------------------------ *)

(* Latency hiding degrades as register pressure reduces the number of
   resident warps per SM: time scales with (max_warps / active_warps)^0.75,
   a standard throughput approximation.  This is what turns the legacy
   builds' register bloat (Fig. 10) into their slowdown (Fig. 11). *)
let occupancy_factor machine regs =
  let regfile = machine.Machine.registers_per_sm in
  let max_warps = float_of_int machine.Machine.max_warps_per_sm in
  let active =
    Float.max 1.0
      (Float.min max_warps (float_of_int regfile /. (float_of_int (max 16 regs) *. 32.0)))
  in
  Float.pow (max_warps /. active) 0.75

let launch_kernel t (kernel : Func.t) (args : Rvalue.t list) =
  let info =
    match kernel.Func.kernel with
    | Some k -> k
    | None -> error "@%s is not a kernel" kernel.Func.name
  in
  let nteams =
    match info.Func.num_teams with Some n -> n | None -> t.machine.Machine.default_teams
  in
  let nthreads =
    min t.machine.Machine.max_threads_per_team
      (match info.Func.num_threads with
      | Some n -> n
      | None -> t.machine.Machine.default_threads)
  in
  let stats =
    {
      kernel_name = kernel.Func.name;
      cycles = 0;
      team_cycles_total = 0;
      instructions = 0;
      loads_global = 0;
      loads_shared = 0;
      loads_local = 0;
      stores_global = 0;
      stores_shared = 0;
      stores_local = 0;
      atomics_global = 0;
      atomics_shared = 0;
      divergent_branches = 0;
      runtime_calls = 0;
      barriers = 0;
      indirect_calls = 0;
      shared_bytes = 0;
      shared_fallbacks = 0;
      heap_high_water = 0;
      registers = Regalloc.estimate t.m kernel;
      teams = nteams;
      threads_per_team = nthreads;
    }
  in
  t.kernel_stats <- stats :: t.kernel_stats;
  t.cur_stats <- Some stats;
  (* track the heap high-water mark of this launch alone *)
  t.mem.Mem.heap_high_water <- t.mem.Mem.heap_in_use;
  let is_spmd = info.Func.exec_mode = Func.Spmd in
  let is_cuda = Func.has_attr kernel Func.Cuda_kernel in
  let max_team_shared = ref 0 in
  for team_idx = 0 to nteams - 1 do
    let team_uid = Support.Util.Id_gen.fresh t.team_uid_gen in
    let threads =
      Array.init nthreads (fun tid ->
          {
            gid = (team_uid * t.machine.Machine.max_threads_per_team) + tid;
            tid;
            stack = [];
            status = Runnable;
            clock = 0;
            local_sp = 0;
            level = 0;
            last_work_gen = 0;
            wake_value = Undef;
            blocked_reg = None;
            wait_wants_id = false;
            barrier_site = "";
            heap_live = 0;
            site_execs = Hashtbl.create 16;
          })
    in
    let team =
      {
        team_idx;
        team_uid;
        threads;
        shared_sp = t.mem.Mem.static_shared_size;
        shared_high = t.mem.Mem.static_shared_size;
        work = None;
        work_gen = 0;
        join_pending = 0;
        terminating = false;
        barrier_waiting = [];
        exec_spmd = is_spmd;
        is_cuda;
        uncoalesced = [];
        branch_first = Hashtbl.create 64;
        launch_teams = nteams;
        launch_threads = nthreads;
      }
    in
    Array.iter (fun th -> push_frame t th kernel args) threads;
    run_team t team;
    let team_time = Array.fold_left (fun acc th -> max acc th.clock) 0 threads in
    stats.team_cycles_total <- stats.team_cycles_total + team_time;
    if team.shared_high > !max_team_shared then max_team_shared := team.shared_high;
    (* release per-team memory arenas (recycled via the scratch if any) *)
    Mem.release_shared t.mem team_uid;
    Array.iter (fun th -> Mem.release_local t.mem th.gid) threads
  done;
  stats.shared_bytes <- !max_team_shared;
  (* keep the larger of the concurrency-scaled footprint (recorded at the
     allocation sites) and the arena's own high-water mark *)
  stats.heap_high_water <- max stats.heap_high_water t.mem.Mem.heap_high_water;
  let concurrent = max 1 (min nteams t.machine.Machine.num_sms) in
  stats.cycles <-
    int_of_float
      (float_of_int stats.team_cycles_total /. float_of_int concurrent
      *. occupancy_factor t.machine stats.registers)

let () = launch_hook := launch_kernel

(* ------------------------------------------------------------------ *)
(* Host execution                                                      *)
(* ------------------------------------------------------------------ *)

(* The host runs as a single-thread pseudo-team so that stray runtime calls
   (tracing, math) behave; kernels are launched on direct calls to kernel
   functions. *)
let run_host ?(entry = "main") t =
  let f = Irmod.find_func_exn t.m entry in
  let host_thread =
    {
      gid = -1;
      tid = 0;
      stack = [];
      status = Runnable;
      clock = 0;
      local_sp = 0;
      level = 0;
      last_work_gen = 0;
      wake_value = Undef;
      blocked_reg = None;
      wait_wants_id = false;
      barrier_site = "";
      heap_live = 0;
      site_execs = Hashtbl.create 16;
    }
  in
  push_frame t host_thread f [];
  (* host executes outside any team; kernel launches install their own *)
  let continue_ = ref true in
  while !continue_ do
    run_thread t None host_thread;
    match host_thread.status with
    | Finished -> continue_ := false
    | Runnable -> ()
    | _ ->
      sim_error
        (Fault.Ompgpu_error.Deadlock { barrier = "<host>" })
        "host thread blocked on a device synchronization primitive"
  done;
  ()

(* Total modeled GPU kernel time of all launches (the nvprof metric). *)
let total_kernel_cycles t =
  List.fold_left (fun acc s -> acc + s.cycles) 0 t.kernel_stats

let trace_values t = List.rev t.trace

let max_shared_bytes t =
  List.fold_left (fun acc s -> max acc s.shared_bytes) 0 t.kernel_stats

let max_registers t = List.fold_left (fun acc s -> max acc s.registers) 0 t.kernel_stats

(** A self-contained SplitMix64 PRNG.

    The corpus must regenerate bit-identical programs from a seed on any
    OCaml version and platform — [Stdlib.Random]'s stream is neither
    stable across compiler releases nor specified, so the generator and
    the fuzz tests draw from this instead.  The algorithm is the public
    SplitMix64 mixer (Steele, Lea & Flood, OOPSLA 2014): a 64-bit Weyl
    sequence put through two xor-shift-multiply rounds.  All state is
    explicit; streams never share state unless explicitly {!split}. *)

type t

val create : int64 -> t
(** A fresh stream; equal seeds give equal streams forever. *)

val of_int : int -> t
(** [create] over [Int64.of_int]. *)

val copy : t -> t
(** An independent stream positioned at the same point. *)

val next : t -> int64
(** The next raw 64-bit draw; advances the state. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0 .. bound-1].  [bound] must be
    positive. *)

val bool : t -> bool

val split : t -> string -> t
(** A derived, statistically independent stream named by [label]: the
    child's seed digests the parent's seed and the label (not the
    parent's position), so derivation is order-insensitive — the corpus
    derives program [i]'s stream from the root seed and ["prog#i"]. *)

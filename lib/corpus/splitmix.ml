(* SplitMix64 (Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014).  The whole algorithm is three constants and
   two mixing rounds, which is the point: it is trivially portable, so a
   corpus seed reproduces the same program stream on every OCaml version. *)

type t = { mutable state : int64; seed : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed; seed }
let of_int n = create (Int64.of_int n)
let copy t = { state = t.state; seed = t.seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let int t bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  (* 62-bit draw (the widest that fits OCaml's int non-negatively) mod
     bound: the modulo bias at corpus bounds (< 2^8) is below 2^-54, far
     under anything a generator property could observe *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let bool t = Int64.logand (next t) 1L = 1L

(* Digest the parent's *seed* (not its position) with the label, so the
   stream a label names does not depend on how many draws preceded the
   split.  MD5 is fine: we need stable bits, not cryptography. *)
let split t label =
  let d = Digest.string (Printf.sprintf "%Lx/%s" t.seed label) in
  let byte i = Int64.of_int (Char.code d.[i]) in
  let seed = ref 0L in
  for i = 0 to 7 do
    seed := Int64.logor (Int64.shift_left !seed 8) (byte i)
  done;
  create !seed

(* Shared test helpers: compile MiniOMP snippets, run them on the simulator,
   and compare observable traces across build configurations. *)

let compile ?(scheme = Frontend.Codegen.Simplified) src =
  Frontend.Codegen.compile ~scheme ~file:"test.c" src

let verify m =
  match Ir.Verify.check m with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "verifier rejected module: %s" msg

(* Verify after EVERY pipeline pass, not just at the end: the trace layer
   fires an event per executed pass, so a verifier failure is pinned to the
   offending pass and round instead of to "somewhere in the pipeline". *)
let optimize ?(options = Openmpopt.Pass_manager.default_options) m =
  let trace =
    Observe.Trace.create
      ~on_event:(fun (e : Observe.Trace.event) ->
        match Ir.Verify.check m with
        | Ok () -> ()
        | Error msg ->
          Alcotest.failf "verifier rejected module after pass %s (round %d): %s"
            e.Observe.Trace.pass e.Observe.Trace.round msg)
      ()
  in
  let report = Openmpopt.Pass_manager.run ~options ~trace m in
  verify m;
  report

let simulate ?(machine = Gpusim.Machine.test_machine) m =
  let sim = Gpusim.Interp.create machine m in
  Gpusim.Interp.run_host sim;
  sim

(* Compile (+ optionally optimize) and return the sorted observable trace. *)
let run_trace ?(scheme = Frontend.Codegen.Simplified) ?options src =
  let m = compile ~scheme src in
  verify m;
  (match options with
  | Some options -> ignore (optimize ~options m)
  | None -> ());
  let sim = simulate m in
  Gpusim.Interp.trace_values sim
  |> List.map (fun v ->
         match v with
         | Gpusim.Rvalue.I x -> Printf.sprintf "i:%Ld" x
         | Gpusim.Rvalue.F x -> Printf.sprintf "f:%.9g" x
         | v -> Fmt.str "%a" Gpusim.Rvalue.pp v)
  |> List.sort String.compare

let trace_testable = Alcotest.(list string)

(* Assert that every configuration of a program observes the same trace. *)
let assert_same_trace ?(schemes = [ Frontend.Codegen.Simplified ]) ?(option_sets = []) src =
  let base = run_trace src in
  List.iter
    (fun scheme ->
      Alcotest.check trace_testable
        ("scheme " ^ Frontend.Codegen.scheme_name scheme)
        base (run_trace ~scheme src))
    schemes;
  List.iter
    (fun (label, options) ->
      Alcotest.check trace_testable label base (run_trace ~options src))
    option_sets

let all_opt_variants =
  let open Openmpopt.Pass_manager in
  [
    ("full", default_options);
    ("no-spmd", { default_options with disable_spmdization = true });
    ( "no-spmd,no-csm",
      { default_options with disable_spmdization = true;
        disable_state_machine_rewrite = true } );
    ("no-deglob", { default_options with disable_deglobalization = true });
    ("no-fold", { default_options with disable_folding = true });
    ("no-group", { default_options with disable_guard_grouping = true });
    ("no-internalize", { default_options with disable_internalization = true });
    ("h2s-only", { default_options with disable_spmdization = true;
                   disable_state_machine_rewrite = true; disable_folding = true;
                   disable_heap_to_shared = true });
  ]

(* Property tests honour two environment variables so that CI (and bug
   reproduction) can pin the run:
     FUZZ_ITERS  override the iteration count of every property
     FUZZ_SEED   fix the random seed (integer) *)
let qtest ?(count = 100) name gen prop =
  let count =
    match Option.bind (Sys.getenv_opt "FUZZ_ITERS") int_of_string_opt with
    | Some n when n > 0 -> n
    | _ -> count
  in
  let rand =
    Option.map
      (fun seed -> Random.State.make [| seed |])
      (Option.bind (Sys.getenv_opt "FUZZ_SEED") int_of_string_opt)
  in
  QCheck_alcotest.to_alcotest ?rand (QCheck.Test.make ~count ~name gen prop)

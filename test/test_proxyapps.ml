(* Proxy applications: every app compiles and verifies in all schemes, the
   optimization opportunity counts match the paper's Figure 9, and all build
   configurations agree on the computed checksum. *)

let scale = Proxyapps.App.Tiny

let compile_ok app scheme source =
  let m = Frontend.Codegen.compile ~scheme ~file:(app ^ ".c") source in
  Helpers.verify m;
  m

let per_app_tests (app : Proxyapps.App.t) =
  let name = app.Proxyapps.App.name in
  [
    Alcotest.test_case (name ^ ": compiles in all schemes") `Quick (fun () ->
        ignore (compile_ok name Frontend.Codegen.Simplified (app.Proxyapps.App.omp_source scale));
        ignore (compile_ok name Frontend.Codegen.Legacy (app.Proxyapps.App.omp_source scale));
        ignore (compile_ok name Frontend.Codegen.Cuda (app.Proxyapps.App.cuda_source scale)));
    Alcotest.test_case (name ^ ": Figure 9 opportunity counts") `Quick (fun () ->
        let m =
          compile_ok name Frontend.Codegen.Simplified (app.Proxyapps.App.omp_source scale)
        in
        let report = Helpers.optimize m in
        Alcotest.(check int)
          (name ^ " heap-to-stack")
          app.Proxyapps.App.expected_h2s
          report.Openmpopt.Pass_manager.heap_to_stack;
        Alcotest.(check int)
          (name ^ " heap-to-shared")
          app.Proxyapps.App.expected_h2shared
          report.Openmpopt.Pass_manager.heap_to_shared;
        Alcotest.(check bool)
          (name ^ " SPMDzed")
          app.Proxyapps.App.expected_spmdized
          (report.Openmpopt.Pass_manager.spmdized > 0);
        Alcotest.(check bool)
          (name ^ " has runtime-call folds")
          true
          (report.Openmpopt.Pass_manager.folds_exec_mode > 0
          && report.Openmpopt.Pass_manager.folds_parallel_level > 0));
    Alcotest.test_case (name ^ ": no missed opportunities") `Quick (fun () ->
        let m =
          compile_ok name Frontend.Codegen.Simplified (app.Proxyapps.App.omp_source scale)
        in
        let report = Helpers.optimize m in
        let missed =
          List.filter
            (fun r -> r.Openmpopt.Remark.kind = Openmpopt.Remark.Missed)
            report.Openmpopt.Pass_manager.remarks
        in
        Alcotest.(check (list string)) (name ^ " missed remarks") []
          (List.map Openmpopt.Remark.to_string missed));
    Alcotest.test_case (name ^ ": checksums agree across configs") `Quick (fun () ->
        let machine = Gpusim.Machine.test_machine in
        let configs =
          [ Harness.Config.llvm12; Harness.Config.no_opt; Harness.Config.dev0;
            Harness.Config.h2s2_cfg; Harness.Config.cuda ]
        in
        let ms = Harness.Runner.run_configs ~machine ~scale app configs in
        let mismatches = Harness.Tables.check_consistency ms in
        Alcotest.(check (list string)) (name ^ " consistency") [] mismatches;
        (* at least the dev configuration must have succeeded *)
        List.iter
          (fun (m : Harness.Runner.measurement) ->
            match m.Harness.Runner.outcome with
            | Harness.Runner.Err e ->
              Alcotest.failf "%s/%s failed: %s" name m.Harness.Runner.config.Harness.Config.label
                (Fault.Ompgpu_error.to_string e)
            | _ -> ())
          ms);
  ]

let test_rsbench_oom_at_bench_scale () =
  (* the paper's Figure 11b: the unoptimized build runs out of device heap *)
  let app = Proxyapps.Apps.find_exn "rsbench" in
  let m =
    Harness.Runner.run ~machine:Gpusim.Machine.bench_machine ~scale:Proxyapps.App.Bench app
      Harness.Config.no_opt
  in
  (match m.Harness.Runner.outcome with
  | Harness.Runner.Err { Fault.Ompgpu_error.kind = Fault.Ompgpu_error.Oom; _ } -> ()
  | _ -> Alcotest.fail "expected the unoptimized RSBench to run out of memory");
  (* while heap-to-stack rescues it *)
  let m2 =
    Harness.Runner.run ~machine:Gpusim.Machine.bench_machine ~scale:Proxyapps.App.Bench app
      Harness.Config.dev0
  in
  match m2.Harness.Runner.outcome with
  | Harness.Runner.Ok _ -> ()
  | _ -> Alcotest.fail "optimized RSBench must run"

let test_apps_registry () =
  Alcotest.(check int) "four applications" 4 (List.length Proxyapps.Apps.all);
  Alcotest.(check bool) "find" true (Proxyapps.Apps.find "xsbench" <> None);
  Alcotest.(check bool) "find unknown" true (Proxyapps.Apps.find "nope" = None)

let suite =
  List.concat_map per_app_tests Proxyapps.Apps.all
  @ [
      Alcotest.test_case "rsbench OOM at bench scale" `Slow test_rsbench_oom_at_bench_scale;
      Alcotest.test_case "registry" `Quick test_apps_registry;
    ]

(* workload characterization, mirroring the paper's description: XSBench is
   memory bound (dominated by uncached global loads), RSBench is the compute
   bound alternative *)
let test_memory_vs_compute_bound () =
  (* at bench scale XSBench's cross-section table exceeds the read-only
     cache while RSBench's pole data fits, so XSBench stalls on memory:
     higher modeled cycles per retired instruction *)
  let machine = Gpusim.Machine.bench_machine in
  let cpi name =
    let app = Proxyapps.Apps.find_exn name in
    let m =
      Harness.Runner.run ~machine ~scale:Proxyapps.App.Bench app Harness.Config.dev0
    in
    match m.Harness.Runner.outcome with
    | Harness.Runner.Ok x ->
      float_of_int x.Harness.Runner.cycles /. float_of_int (max 1 x.Harness.Runner.instructions)
    | _ -> Alcotest.failf "%s should run" name
  in
  Alcotest.(check bool) "xsbench stalls on memory more than rsbench" true
    (cpi "xsbench" > cpi "rsbench")

let test_launch_dimensions_from_clauses () =
  List.iter
    (fun (name, expect_spmd) ->
      let app = Proxyapps.Apps.find_exn name in
      let m =
        Frontend.Codegen.compile ~scheme:Frontend.Codegen.Simplified ~file:(name ^ ".c")
          (app.Proxyapps.App.omp_source Proxyapps.App.Tiny)
      in
      match Ir.Irmod.kernels m with
      | [ k ] ->
        let info = Option.get k.Ir.Func.kernel in
        Alcotest.(check bool) (name ^ " has constant launch bounds") true
          (info.Ir.Func.num_teams <> None && info.Ir.Func.num_threads <> None);
        Alcotest.(check bool)
          (name ^ " front-end mode")
          expect_spmd
          (info.Ir.Func.exec_mode = Ir.Func.Spmd)
      | ks -> Alcotest.failf "%s: expected 1 kernel, got %d" name (List.length ks))
    [ ("xsbench", true); ("rsbench", true); ("su3bench", false); ("miniqmc", false) ]

let suite =
  suite
  @ [
      Alcotest.test_case "memory vs compute bound" `Slow test_memory_vs_compute_bound;
      Alcotest.test_case "launch bounds from clauses" `Quick
        test_launch_dimensions_from_clauses;
    ]

(** The device runtime function registry — the MiniIR equivalent of LLVM's
    OMPKinds.def: the single table of known device runtime functions and
    the semantic facts the OpenMP-aware optimizer may assume about them
    ("we look for uses of known LLVM/OpenMP runtime functions that have
    been emitted by the front-end", paper Section IV).

    The GPU simulator intercepts calls to these functions by name; their
    executable semantics live in [Gpusim.Interp]. *)

val mode_generic : int
(** Execution-mode encoding of the i32 argument of [__kmpc_target_init]. *)

val mode_spmd : int

val main_thread_return : int
(** What [__kmpc_target_init] returns to the thread that continues as the
    team's main thread in generic mode (workers get their hardware id). *)

type effect_class =
  | Eff_none  (** pure query; reads launch state but has no side effects *)
  | Eff_alloc  (** allocates globalized storage *)
  | Eff_free
  | Eff_sync  (** synchronizes threads *)
  | Eff_parallel  (** launches a parallel region *)
  | Eff_other  (** arbitrary observable side effect (tracing) *)

type t = {
  rt_name : string;
  rt_ret : Ir.Types.t;
  rt_params : Ir.Types.t list;
  rt_effect : effect_class;
  rt_spmd_amenable : bool;
      (** safe for every thread of a team to execute redundantly (lets
          SPMDzation skip guarding this call) *)
  rt_nocapture : bool;  (** pointer arguments do not escape through the call *)
}

val all : t list

val lookup : string -> t option
val is_runtime_fn : string -> bool
val is_alloc : string -> bool
val is_free : string -> bool

val free_of_alloc : string -> string option
(** The matching deallocation function of an allocation function. *)

val is_spmd_amenable : string -> bool
val has_side_effect : string -> bool

val declare_in : Ir.Irmod.t -> unit
(** Add declarations for every runtime function not yet present. *)

(* miniQMC: the batched B-spline evaluation of QMCPACK's check_spo kernel.
   A generic-mode kernel: the team's main thread stages spline parameters
   and coefficients into team-visible storage (the 18 variables HeapToShared
   recovers, Fig. 9), then two parallel regions evaluate the orbitals and
   reduce them.  Three per-thread locals inside the regions are recovered by
   HeapToStack. *)

let params = function
  | App.Tiny -> (16, 8, 2, 8)  (* walkers, orbitals, teams, threads *)
  | App.Bench -> (128, 32, 8, 16)

let source_common ~coefs =
  Printf.sprintf
    {|
double spline_coefs[%d];
double walker_pos[512];
double orbital_vals[4096];
double reductions[512];

static double eval_bspline(double x, double c0, double c1, double c2, double c3,
                           double* basis) {
  double t = x - (double)((int)x);
  basis[0] = (1.0 - t) * (1.0 - t) * (1.0 - t) / 6.0;
  basis[1] = (3.0 * t * t * t - 6.0 * t * t + 4.0) / 6.0;
  basis[2] = (0.0 - 3.0 * t * t * t + 3.0 * t * t + 3.0 * t + 1.0) / 6.0;
  basis[3] = t * t * t / 6.0;
  return c0 * basis[0] + c1 * basis[1] + c2 * basis[2] + c3 * basis[3];
}

static double orbital_value(double x, double y, double z,
                            double c0, double c1, double c2, double c3,
                            double c4, double c5, double c6, double c7) {
  double basis_x[4];
  double basis_y[4];
  double vx = eval_bspline(x, c0, c1, c2, c3, basis_x);
  double vy = eval_bspline(y, c4, c5, c6, c7, basis_y);
  return vx * vy + basis_x[0] * basis_y[0] * 0.001 + z * 0.01;
}

static double reduce_contrib(double v, double gsx, double gsy) {
  double tmp[1];
  tmp[0] = v * gsx + v * v * gsy;
  return tmp[0];
}
|}
    coefs

let omp_source scale =
  let walkers, orbitals, teams, threads = params scale in
  let coefs = 1024 in
  Printf.sprintf
    {|%s
int main() {
  for (int i = 0; i < %d; i++) { spline_coefs[i] = (double)(i %% 23) * 0.04 + 0.3; }
  for (int i = 0; i < 512; i++) { walker_pos[i] = (double)(i %% 29) * 0.11; }
  int n_walkers = %d;
  int n_orbitals = %d;
  #pragma omp target teams distribute num_teams(%d) thread_limit(%d)
  for (int w = 0; w < n_walkers; w++) {
    // main thread stages spline parameters for this walker: these sixteen
    // locals are shared with the parallel regions below
    double gsx = 0.1 + (double)(w %% 3) * 0.01;
    double gsy = 0.2 + (double)(w %% 5) * 0.01;
    double gsz = 0.3;
    double px = walker_pos[(w * 3) %% 512];
    double py = walker_pos[(w * 3 + 1) %% 512];
    double pz = walker_pos[(w * 3 + 2) %% 512];
    int base = (w * 8) %% %d;
    double c0 = spline_coefs[base];
    double c1 = spline_coefs[base + 1];
    double c2 = spline_coefs[base + 2];
    double c3 = spline_coefs[base + 3];
    double c4 = spline_coefs[base + 4];
    double c5 = spline_coefs[base + 5];
    double c6 = spline_coefs[base + 6];
    double c7 = spline_coefs[base + 7];
    double wsum = 0.0;
    #pragma omp parallel for
    for (int o = 0; o < n_orbitals; o++) {
      double x = px * (double)(o + 1) * 0.37;
      double y = py * (double)(o + 1) * 0.21;
      orbital_vals[(w %% 256) * %d + o] =
        orbital_value(x, y, pz, c0, c1, c2, c3, c4, c5, c6, c7);
    }
    #pragma omp parallel for
    for (int o2 = 0; o2 < n_orbitals; o2++) {
      double v = orbital_vals[(w %% 256) * %d + o2];
      #pragma omp atomic
      wsum += reduce_contrib(v, gsx, gsy);
    }
    reductions[w %% 512] = wsum + gsz * 0.001;
  }
  double checksum = 0.0;
  for (int w = 0; w < n_walkers; w++) { checksum += reductions[w %% 512]; }
  trace_f64(checksum);
  return 0;
}
|}
    (source_common ~coefs) coefs walkers orbitals teams threads (coefs - 8) orbitals
    orbitals

let cuda_source scale =
  let walkers, orbitals, teams, threads = params scale in
  let coefs = 1024 in
  Printf.sprintf
    {|%s
int main() {
  for (int i = 0; i < %d; i++) { spline_coefs[i] = (double)(i %% 23) * 0.04 + 0.3; }
  for (int i = 0; i < 512; i++) { walker_pos[i] = (double)(i %% 29) * 0.11; }
  int n_walkers = %d;
  int n_orbitals = %d;
  int n_work = n_walkers * n_orbitals;
  #pragma omp target teams distribute parallel for num_teams(%d) thread_limit(%d)
  for (int idx = 0; idx < n_work; idx++) {
    int w = idx / n_orbitals;
    int o = idx %% n_orbitals;
    double px = walker_pos[(w * 3) %% 512];
    double py = walker_pos[(w * 3 + 1) %% 512];
    double pz = walker_pos[(w * 3 + 2) %% 512];
    int base = (w * 8) %% %d;
    double x = px * (double)(o + 1) * 0.37;
    double y = py * (double)(o + 1) * 0.21;
    orbital_vals[(w %% 256) * %d + o] =
      orbital_value(x, y, pz, spline_coefs[base], spline_coefs[base + 1],
                    spline_coefs[base + 2], spline_coefs[base + 3],
                    spline_coefs[base + 4], spline_coefs[base + 5],
                    spline_coefs[base + 6], spline_coefs[base + 7]);
  }
  #pragma omp target teams distribute parallel for num_teams(%d) thread_limit(%d)
  for (int w = 0; w < n_walkers; w++) {
    double gsx = 0.1 + (double)(w %% 3) * 0.01;
    double gsy = 0.2 + (double)(w %% 5) * 0.01;
    double wsum = 0.0;
    for (int o2 = 0; o2 < n_orbitals; o2++) {
      double v = orbital_vals[(w %% 256) * %d + o2];
      wsum += reduce_contrib(v, gsx, gsy);
    }
    reductions[w %% 512] = wsum + 0.3 * 0.001;
  }
  double checksum = 0.0;
  for (int w = 0; w < n_walkers; w++) { checksum += reductions[w %% 512]; }
  trace_f64(checksum);
  return 0;
}
|}
    (source_common ~coefs) coefs walkers orbitals teams threads (coefs - 8) orbitals
    teams threads orbitals

let app : App.t =
  {
    App.name = "miniqmc";
    description = "miniQMC: batched B-spline orbital evaluation (check_spo_batched)";
    omp_source;
    cuda_source;
    expected_h2s = 3;
    expected_h2shared = 18;
    expected_spmdized = true;
  }

(** Compile + optimize + simulate one proxy application under one build
    configuration, collecting the metrics the paper reports. *)

type metrics = {
  cycles : int;
  smem_bytes : int;
  registers : int;
  heap_high_water : int;
  instructions : int;
  barriers : int;
  atomics : int;  (** global + shared atomic RMW operations executed *)
  divergent_branches : int;  (** structural divergence events (cost model) *)
  indirect_calls : int;
  runtime_calls : int;
  checksum : float option;  (** the app's traced result, for cross-checking *)
  report : Openmpopt.Pass_manager.report option;  (** for Dev builds *)
  kernel_stats : Gpusim.Interp.launch_stats list;
      (** per-launch cost-model counters, oldest launch first *)
  trace : Observe.Trace.t option;
      (** per-pass pipeline events; present only for Dev builds run with
          [with_trace] *)
}

type outcome =
  | Ok of metrics
  | Err of Fault.Ompgpu_error.t
      (** any failure, as a structured taxonomy value: match on [kind]
          (e.g. [Oom] for the device-heap exhaustion of RSBench, Fig. 11b);
          the raise-point backtrace is preserved when recording is on *)

type measurement = { app : string; config : Config.t; outcome : outcome }

val cache_key :
  machine:Gpusim.Machine.t ->
  scale:Proxyapps.App.scale ->
  ?inject:string ->
  Ir.Irmod.t ->
  Config.t ->
  string
(** Content address of one pipeline job: digest of the unoptimized MiniIR
    module text, the build fingerprint (pass options), the machine
    description, the scale and the fault-injector fingerprint ([inject],
    default [""] = no injection).  Exposed for the test suite; the exact
    definition is documented in docs/SCHEDULER.md. *)

val run :
  ?machine:Gpusim.Machine.t ->
  ?scale:Proxyapps.App.scale ->
  ?with_trace:bool ->
  ?cache:outcome Sched.Cache.t ->
  ?scratch:Gpusim.Scratch.t ->
  ?perf:Observe.Perf.t ->
  ?attempt:int ->
  Proxyapps.App.t ->
  Config.t ->
  measurement
(** Defaults: [Gpusim.Machine.bench_machine], [Proxyapps.App.Bench],
    [with_trace:false].  Tracing is off by default so that bechamel
    micro-benchmarks measure the pipeline itself, not the instrumentation.

    [scratch] recycles simulation arenas across the jobs of one owner (a
    pool worker); simulations stay byte-identical to the allocate-per-job
    path.  The batch runner threads one scratch per worker automatically —
    pass this only when driving [run] directly from a single owner.

    [perf] attributes each phase (frontend, optimize, verify, simulate)
    to the profile collector under the stack [app/config-label; phase];
    `make perf` renders the collected samples as a flamegraph and an
    allocation profile (docs/PERF.md).  Safe to share across pool
    domains.

    Never raises: every failure settles into an [Err] outcome.  When the
    config arms fault sites ([Config.with_inject]), a per-(job, [attempt])
    injector is derived and threaded through the pass manager and the
    simulator; [attempt] (default 0) makes retried jobs draw fresh coins.

    With [cache], the front end still runs (its output text is the content
    address) but the optimize+simulate work is skipped on a hit.  A cached
    outcome carries the trace and report of the job that computed it;
    front-end failures are never cached. *)

val run_configs :
  ?machine:Gpusim.Machine.t ->
  ?scale:Proxyapps.App.scale ->
  ?with_trace:bool ->
  ?pool:Sched.Pool.t ->
  ?cache:outcome Sched.Cache.t ->
  ?perf:Observe.Perf.t ->
  ?watchdog_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  Proxyapps.App.t ->
  Config.t list ->
  measurement list
(** Results in config order regardless of execution interleaving. *)

val run_batch :
  ?machine:Gpusim.Machine.t ->
  ?scale:Proxyapps.App.scale ->
  ?with_trace:bool ->
  ?pool:Sched.Pool.t ->
  ?cache:outcome Sched.Cache.t ->
  ?perf:Observe.Perf.t ->
  ?watchdog_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  (Proxyapps.App.t * Config.t) list ->
  measurement list
(** Compile+optimize+simulate every (app, config) pair — concurrently when
    [pool] is given, each job with its own trace and remark sink — and
    return measurements in input order, so sequential and parallel batches
    render byte-identical tables.

    Supervision: [watchdog_s] bounds each job's wall time (pool runs only;
    a hung job settles to [Err] with kind [Timeout]); failures whose
    [Fault.Ompgpu_error.is_transient] holds are retried up to [retries]
    times (default 0) with exponential backoff ([backoff_s]), each attempt
    drawing fresh injector coins.  No exception escapes a batch. *)

val relative : baseline:measurement -> measurement -> float option
(** Performance relative to [baseline] (the paper normalizes to LLVM 12):
    greater than 1 means faster. *)

val json_of_measurement : measurement -> Observe.Json.t
(** One measurement as a machine-readable perf record: simulator counters,
    report counters, per-kernel cost-model stats and (when traced) the
    per-pass pipeline events.  bench/main.ml collects these into
    BENCH_observe.json. *)

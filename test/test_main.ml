let () =
  Alcotest.run "ompgpu"
    [
      ("support", Test_support.suite);
      ("ir", Test_ir.suite);
      ("analysis", Test_analysis.suite);
      ("frontend", Test_frontend.suite);
      ("gpusim", Test_gpusim.suite);
      ("interp-ops", Test_interp_ops.suite);
      ("openmpopt", Test_openmpopt.suite);
      ("passes-ir", Test_passes_ir.suite);
      ("proxyapps", Test_proxyapps.suite);
      ("harness", Test_harness.suite);
      ("wave3", Test_wave3.suite);
      ("observe", Test_observe.suite);
      ("report-golden", Test_report_golden.suite);
      ("sched", Test_sched.suite);
      ("fault", Test_fault.suite);
      ("pipeline", Test_pipeline.suite);
      ("service", Test_service.suite);
      ("resilience", Test_resilience.suite);
      ("fleet", Test_fleet.suite);
      ("storage", Test_storage.suite);
      ("fuzz", Test_fuzz.suite);
      ("corpus", Test_corpus.suite);
    ]

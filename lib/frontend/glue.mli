(** The IR "glue" layer of the device runtime.

    In LLVM the OpenMP device runtime is shipped as bitcode and linked into
    the application module, so the execution-mode checks inside runtime
    helpers become visible to (and foldable by) the middle end.  The front
    end reproduces that by routing OpenMP API queries through these
    IR-defined helpers; LLVM-12-style (legacy) builds instead call opaque
    runtime entries that cannot fold. *)

val tid_name : string
val nthreads_name : string
val team_name : string
val nteams_name : string
val barrier_name : string

val emit : Ir.Irmod.t -> unit
(** Define the glue helpers in the module (idempotent). *)

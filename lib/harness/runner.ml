(* Compile + optimize + simulate one proxy application under one build
   configuration, collecting the metrics the paper reports. *)

type metrics = {
  cycles : int;
  smem_bytes : int;
  registers : int;
  heap_high_water : int;
  instructions : int;
  barriers : int;
  atomics : int;
  divergent_branches : int;
  indirect_calls : int;
  runtime_calls : int;
  checksum : float option;  (* the app's traced result, for cross-checking *)
  report : Openmpopt.Pass_manager.report option;
  kernel_stats : Gpusim.Interp.launch_stats list;  (* oldest first *)
  trace : Observe.Trace.t option;  (* present when run with [with_trace] *)
}

(* Every failure is one structured error: kind, phase, optional location,
   message and (when recording is on) the raise-point backtrace.  Match on
   [e.kind] where the old [Oom]/[Error] distinction mattered. *)
type outcome = Ok of metrics | Err of Fault.Ompgpu_error.t

type measurement = { app : string; config : Config.t; outcome : outcome }

(* Front-end compile only: the returned options say whether (and how) the
   OpenMP-aware pipeline still has to run.  Splitting the front end from the
   middle end lets the cached path content-address the *unoptimized* module
   text and skip the optimize+simulate work on a hit. *)
let frontend_for (config : Config.t) (app : Proxyapps.App.t)
    (scale : Proxyapps.App.scale) =
  let file = app.Proxyapps.App.name ^ ".c" in
  match config.Config.build with
  | Config.Llvm12 ->
    let src = app.Proxyapps.App.omp_source scale in
    (Frontend.Codegen.compile ~scheme:Frontend.Codegen.Legacy ~file src, None)
  | Config.Dev_noopt ->
    let src = app.Proxyapps.App.omp_source scale in
    (Frontend.Codegen.compile ~scheme:Frontend.Codegen.Simplified ~file src, None)
  | Config.Dev options ->
    let src = app.Proxyapps.App.omp_source scale in
    (Frontend.Codegen.compile ~scheme:Frontend.Codegen.Simplified ~file src, Some options)
  | Config.Cuda ->
    let src = app.Proxyapps.App.cuda_source scale in
    (Frontend.Codegen.compile ~scheme:Frontend.Codegen.Cuda ~file src, None)

(* Attribute one phase of one job to the profile collector, when there is
   one.  The stack is [job label; phase], which folds into the
   per-job-per-phase flamegraph `make perf` renders (docs/PERF.md). *)
let prof perf ~plabel phase f =
  match perf with
  | None -> f ()
  | Some p -> Observe.Perf.record p ~stack:[ plabel; phase ] f

let compile_for ?trace ?injector ?perf ~plabel (config : Config.t)
    (app : Proxyapps.App.t) (scale : Proxyapps.App.scale) =
  match prof perf ~plabel "frontend" (fun () -> frontend_for config app scale) with
  | m, None -> (m, None)
  | m, Some options ->
    let report =
      prof perf ~plabel "optimize" (fun () ->
          Openmpopt.Pass_manager.run ~options ?injector ?trace m)
    in
    (m, Some report)

let checksum_of_trace sim =
  match Gpusim.Interp.trace_values sim with
  | [ Gpusim.Rvalue.F v ] -> Some v
  | [ Gpusim.Rvalue.I v ] -> Some (Int64.to_float v)
  | _ -> None

(* Verify + simulate an already-optimized module.  [scratch] recycles the
   simulation arenas across the jobs of one pool worker; results are
   byte-identical to the allocate-per-job path (see gpusim/scratch.ml). *)
let measure ~machine ~trace ?injector ?scratch ?perf ?(plabel = "") (m : Ir.Irmod.t)
    (report : Openmpopt.Pass_manager.report option) : outcome =
  match prof perf ~plabel "verify" (fun () -> Ir.Verify.check m) with
  | Result.Error msg ->
    Err
      (Fault.Ompgpu_error.make Fault.Ompgpu_error.Verify
         ~phase:Fault.Ompgpu_error.Verifying msg)
  | Result.Ok () -> (
    let sim = Gpusim.Interp.create ?injector ?scratch machine m in
    match prof perf ~plabel "simulate" (fun () -> Gpusim.Interp.run_host sim) with
    | exception e ->
      Gpusim.Interp.release sim;
      Err
        (Errors.classify ~phase:Fault.Ompgpu_error.Simulating e
           (Printexc.get_raw_backtrace ()))
    | () ->
      let stats = sim.Gpusim.Interp.kernel_stats in
      let sum f = List.fold_left (fun acc s -> acc + f s) 0 stats in
      Ok
        {
          cycles = Gpusim.Interp.total_kernel_cycles sim;
          smem_bytes = Gpusim.Interp.max_shared_bytes sim;
          registers = Gpusim.Interp.max_registers sim;
          heap_high_water =
            List.fold_left
              (fun acc (s : Gpusim.Interp.launch_stats) ->
                max acc s.heap_high_water)
              0 stats;
          instructions = sum (fun s -> s.Gpusim.Interp.instructions);
          barriers = sum (fun s -> s.Gpusim.Interp.barriers);
          atomics =
            sum (fun s ->
                s.Gpusim.Interp.atomics_global + s.Gpusim.Interp.atomics_shared);
          divergent_branches = sum (fun s -> s.Gpusim.Interp.divergent_branches);
          indirect_calls = sum (fun s -> s.Gpusim.Interp.indirect_calls);
          runtime_calls = sum (fun s -> s.Gpusim.Interp.runtime_calls);
          checksum = checksum_of_trace sim;
          report;
          kernel_stats = List.rev stats;
          trace;
        }
      |> fun ok ->
      Gpusim.Interp.release sim;
      ok)

(* Machine descriptions are immutable records of scalars, so marshalling is
   a deterministic content fingerprint.  Batches hash the same machine for
   every job, so one physical-equality slot removes the rehash. *)
let fingerprint_memo : (Gpusim.Machine.t * string) option ref = ref None

let machine_fingerprint (machine : Gpusim.Machine.t) =
  match !fingerprint_memo with
  | Some (m, fp) when m == machine -> fp
  | _ ->
    let fp = Digest.to_hex (Digest.string (Marshal.to_string machine [])) in
    fingerprint_memo := Some (machine, fp);
    fp

let scale_fingerprint = function
  | Proxyapps.App.Tiny -> "tiny"
  | Proxyapps.App.Bench -> "bench"

(* The content address of one pipeline job (docs/SCHEDULER.md): the
   unoptimized MiniIR text plus everything else that determines the
   measurement — the build (pass options), the simulated machine, the
   problem scale, and the (derived) fault-injector fingerprint: an injected
   run must never share a cached result with a clean one, nor with a
   different seed.  The app name is deliberately NOT part of the key. *)
let cache_key ~machine ~scale ?(inject = "") (m : Ir.Irmod.t) (config : Config.t) =
  Sched.Cache.key
    [
      Ir.Printer.module_to_string m;
      Config.build_fingerprint config.Config.build;
      machine_fingerprint machine;
      scale_fingerprint scale;
      inject;
    ]

(* The per-job injector: derived from the config's specs with a tag naming
   the job AND the attempt, so (a) the coin sequence one job sees is
   independent of how pool domains interleave jobs, and (b) a retried job
   draws fresh coins — that is what makes bounded retry worthwhile. *)
let injector_for ~scale ~attempt (app : Proxyapps.App.t) (config : Config.t) =
  let base = Fault.Injector.create config.Config.inject in
  if Fault.Injector.is_none base then base
  else
    Fault.Injector.derive base
      (Printf.sprintf "%s|%s|%s|%d" app.Proxyapps.App.name
         (Config.build_fingerprint config.Config.build)
         (scale_fingerprint scale) attempt)

let run ?(machine = Gpusim.Machine.bench_machine) ?(scale = Proxyapps.App.Bench)
    ?(with_trace = false) ?cache ?scratch ?perf ?(attempt = 0)
    (app : Proxyapps.App.t) (config : Config.t) : measurement =
  let plabel = app.Proxyapps.App.name ^ "/" ^ config.Config.label in
  (* each job owns a fresh trace (and, inside the pass manager, a fresh
     remark sink), so concurrent jobs never interleave their events *)
  let trace = if with_trace then Some (Observe.Trace.create ()) else None in
  let injector = injector_for ~scale ~attempt app config in
  (* the Pool_stall site: an injected stall at job start exercises the
     batch watchdog without touching any compute layer *)
  Fault.Injector.stall injector;
  let classify ~phase e = Err (Errors.classify ~phase e (Printexc.get_raw_backtrace ())) in
  let outcome =
    match cache with
    | None -> (
      match compile_for ?trace ~injector ?perf ~plabel config app scale with
      | exception e -> classify ~phase:Fault.Ompgpu_error.Lowering e
      | m, report -> measure ~machine ~trace ~injector ?scratch ?perf ~plabel m report)
    | Some cache -> (
      (* the front end always runs (its text is the cache key); the
         optimize+simulate work — the expensive part — is what a hit skips.
         Front-end failures produce no module, hence no key: not cached. *)
      match prof perf ~plabel "frontend" (fun () -> frontend_for config app scale) with
      | exception e -> classify ~phase:Fault.Ompgpu_error.Lowering e
      | m, options ->
        let key =
          cache_key ~machine ~scale ~inject:(Fault.Injector.fingerprint injector) m
            config
        in
        Sched.Cache.find_or_compute cache ~key (fun () ->
            match
              prof perf ~plabel "optimize" (fun () ->
                  Option.map
                    (fun options ->
                      Openmpopt.Pass_manager.run ~options ~injector ?trace m)
                    options)
            with
            | exception e -> classify ~phase:Fault.Ompgpu_error.Optimizing e
            | report -> measure ~machine ~trace ~injector ?scratch ?perf ~plabel m report))
  in
  { app = app.Proxyapps.App.name; config; outcome }

let is_transient_outcome = function
  | Err e -> Fault.Ompgpu_error.is_transient e
  | Ok _ -> false

(* One scratch per executing domain (pool workers, and the awaiting caller
   when the pool has it help run jobs).  Domain-local state is single-owner
   by construction — no synchronization, and a long-lived domain (the
   compile daemon's) reuses its arenas across whole batches.  The
   sequential batch branch below never touches this: it stays the
   stateless allocate-per-job reference that the differential and
   conformance suites compare against. *)
let scratch_key = Domain.DLS.new_key (fun () -> Gpusim.Scratch.create ())
let domain_scratch () = Domain.DLS.get scratch_key

(* The batch entry point of the scheduler: compile+optimize+simulate every
   (app, config) pair, concurrently when a pool is given.  Results are in
   input order, so sequential and parallel runs render identical tables.

   Supervision: [watchdog_s] bounds each job's wall time (pool runs only —
   a sequential run cannot be preempted); transient failures (timeouts,
   allocation faults) are retried up to [retries] times with exponential
   backoff, each attempt drawing fresh injector coins.  No exception
   escapes a batch: every job settles to a measurement. *)
let run_batch ?machine ?scale ?with_trace ?pool ?cache ?perf ?watchdog_s
    ?(retries = 0) ?backoff_s jobs =
  match pool with
  | None ->
    let rec attempt n (app, config) =
      let m = run ?machine ?scale ?with_trace ?cache ?perf ~attempt:n app config in
      if n < retries && is_transient_outcome m.outcome then begin
        (match backoff_s with
        | Some b -> Unix.sleepf (b *. float_of_int (1 lsl n))
        | None -> ());
        attempt (n + 1) (app, config)
      end
      else m
    in
    List.map (attempt 0) jobs
  | Some pool ->
    let job ~attempt (app, config) =
      let scratch = Some (domain_scratch ()) in
      let m =
        run ?machine ?scale ?with_trace ?cache ?scratch ?perf ~attempt app config
      in
      (* surface transient failures as exceptions so the pool's guard can
         apply its retry policy; terminal failures settle immediately *)
      match m.outcome with
      | Err e when Fault.Ompgpu_error.is_transient e -> raise (Fault.Ompgpu_error.Error e)
      | _ -> m
    in
    List.map2
      (fun (app, config) result ->
        match result with
        | Result.Ok m -> m
        | Result.Error (e, bt) ->
          {
            app = app.Proxyapps.App.name;
            config;
            outcome = Err (Errors.classify ~phase:Fault.Ompgpu_error.Scheduling e bt);
          })
      jobs
      (Sched.Pool.map_list_guarded pool ?watchdog_s ~retries ?backoff_s job jobs)

(* Run a list of configurations for one app; the result list is in config
   order regardless of the execution interleaving. *)
let run_configs ?machine ?scale ?with_trace ?pool ?cache ?perf ?watchdog_s
    ?retries ?backoff_s app configs =
  run_batch ?machine ?scale ?with_trace ?pool ?cache ?perf ?watchdog_s ?retries
    ?backoff_s
    (List.map (fun config -> (app, config)) configs)

(* Relative performance versus a baseline measurement (the paper normalizes
   to LLVM 12): >1 means faster than the baseline. *)
let relative ~baseline m =
  match (baseline.outcome, m.outcome) with
  | Ok b, Ok x when x.cycles > 0 -> Some (float_of_int b.cycles /. float_of_int x.cycles)
  | _ -> None

(* One measurement as a machine-readable perf record (bench/main.ml appends
   these to BENCH_observe.json). *)
let json_of_measurement (m : measurement) : Observe.Json.t =
  let base =
    [
      ("schema", Observe.Json.Int Observe.Json.schema_version);
      ("app", Observe.Json.String m.app);
      ("config", Observe.Json.String m.config.Config.label);
    ]
  in
  match m.outcome with
  | Err e ->
    Observe.Json.Obj
      (base
      @ [
          ("outcome", Observe.Json.String "error");
          ("error", Fault.Ompgpu_error.to_json e);
        ])
  | Ok x ->
    Observe.Json.Obj
      (base
      @ [
          ("outcome", Observe.Json.String "ok");
          ("cycles", Observe.Json.Int x.cycles);
          ("smem_bytes", Observe.Json.Int x.smem_bytes);
          ("registers", Observe.Json.Int x.registers);
          ("heap_high_water", Observe.Json.Int x.heap_high_water);
          ("instructions", Observe.Json.Int x.instructions);
          ("barriers", Observe.Json.Int x.barriers);
          ("atomics", Observe.Json.Int x.atomics);
          ("divergent_branches", Observe.Json.Int x.divergent_branches);
          ("indirect_calls", Observe.Json.Int x.indirect_calls);
          ("runtime_calls", Observe.Json.Int x.runtime_calls);
          ( "checksum",
            match x.checksum with
            | Some c -> Observe.Json.Float c
            | None -> Observe.Json.Null );
          ( "report",
            match x.report with
            | Some r -> Openmpopt.Pass_manager.report_to_json r
            | None -> Observe.Json.Null );
          ( "kernels",
            Observe.Json.List (List.map Gpusim.Stats.json_of_launch x.kernel_stats) );
          ( "passes",
            match x.trace with
            | Some tr -> Observe.Trace.to_json tr
            | None -> Observe.Json.List [] );
        ])

open Ir

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let test_sizes () =
  Alcotest.(check int) "i1" 1 (Types.size_of Types.I1);
  Alcotest.(check int) "i8" 1 (Types.size_of Types.I8);
  Alcotest.(check int) "i32" 4 (Types.size_of Types.I32);
  Alcotest.(check int) "i64" 8 (Types.size_of Types.I64);
  Alcotest.(check int) "f32" 4 (Types.size_of Types.F32);
  Alcotest.(check int) "f64" 8 (Types.size_of Types.F64);
  Alcotest.(check int) "ptr" 8 (Types.size_of (Types.Ptr Types.Generic));
  Alcotest.(check int) "array" 40 (Types.size_of (Types.Arr (5, Types.F64)));
  Alcotest.(check int) "nested array" 24 (Types.size_of (Types.Arr (2, Types.Arr (3, Types.I32))))

let test_type_equal () =
  Alcotest.(check bool) "ptr spaces differ" false
    (Types.equal (Types.Ptr Types.Shared) (Types.Ptr Types.Local));
  Alcotest.(check bool) "same array" true
    (Types.equal (Types.Arr (4, Types.I8)) (Types.Arr (4, Types.I8)));
  Alcotest.(check bool) "array length differs" false
    (Types.equal (Types.Arr (4, Types.I8)) (Types.Arr (5, Types.I8)))

let test_type_pp () =
  Alcotest.(check string) "ptr" "ptr(shared)" (Types.to_string (Types.Ptr Types.Shared));
  Alcotest.(check string) "arr" "[3 x f64]" (Types.to_string (Types.Arr (3, Types.F64)))

let test_spaces () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        "space name roundtrip" true
        (Types.space_of_name (Types.space_name s) = Some s))
    [ Types.Generic; Types.Global; Types.Shared; Types.Local ]

(* ------------------------------------------------------------------ *)
(* Values and instructions                                             *)
(* ------------------------------------------------------------------ *)

let test_value_views () =
  Alcotest.(check (option int64)) "as_int" (Some 42L) (Value.as_int (Value.i32 42));
  Alcotest.(check (option int64)) "not int" None (Value.as_int (Value.f64 1.0));
  Alcotest.(check bool) "null" true (Value.is_null (Value.null Types.Generic));
  Alcotest.(check bool) "const ty" true
    (Types.equal (Value.const_ty (Value.CInt (Types.I64, 7L))) Types.I64)

let test_instr_result_ty () =
  let mk kind = Instr.make ~id:0 kind in
  Alcotest.(check bool) "alloca is local ptr" true
    (Types.equal (Instr.result_ty (mk (Instr.Alloca (Types.I32, 1)))) (Types.Ptr Types.Local));
  Alcotest.(check bool) "store is void" false
    (Instr.has_result (mk (Instr.Store (Types.I32, Value.i32 0, Value.null Types.Generic))));
  Alcotest.(check bool) "icmp is i1" true
    (Types.equal
       (Instr.result_ty (mk (Instr.Icmp (Instr.Eq, Types.I32, Value.i32 0, Value.i32 0))))
       Types.I1)

let test_instr_operands () =
  let i =
    Instr.make ~id:3
      (Instr.Call (Types.Void, Instr.Indirect (Value.Reg 1), [ Value.Reg 2; Value.i32 5 ]))
  in
  Alcotest.(check int) "indirect callee is an operand" 3 (List.length (Instr.operands i));
  Instr.map_operands
    (fun v -> if Value.equal v (Value.Reg 2) then Value.Reg 9 else v)
    i;
  Alcotest.(check bool) "map_operands rewrote" true
    (List.exists (Value.equal (Value.Reg 9)) (Instr.operands i))

let test_mnemonic_roundtrips () =
  let bins =
    [ Instr.Add; Instr.Sub; Instr.Mul; Instr.Sdiv; Instr.Srem; Instr.Udiv; Instr.Urem;
      Instr.And; Instr.Or; Instr.Xor; Instr.Shl; Instr.Lshr; Instr.Ashr; Instr.Fadd;
      Instr.Fsub; Instr.Fmul; Instr.Fdiv ]
  in
  List.iter
    (fun b ->
      Alcotest.(check bool) "bin" true (Instr.bin_of_name (Instr.bin_name b) = Some b))
    bins;
  List.iter
    (fun c ->
      Alcotest.(check bool) "icmp" true (Instr.icmp_of_name (Instr.icmp_name c) = Some c))
    [ Instr.Eq; Instr.Ne; Instr.Slt; Instr.Sle; Instr.Sgt; Instr.Sge; Instr.Ult;
      Instr.Ule; Instr.Ugt; Instr.Uge ];
  List.iter
    (fun c ->
      Alcotest.(check bool) "cast" true (Instr.cast_of_name (Instr.cast_name c) = Some c))
    [ Instr.Zext; Instr.Sext; Instr.Trunc; Instr.Sitofp; Instr.Fptosi; Instr.Fpext;
      Instr.Fptrunc; Instr.Bitcast; Instr.Spacecast ]

(* ------------------------------------------------------------------ *)
(* Builder + function utilities                                        *)
(* ------------------------------------------------------------------ *)

let build_simple_func () =
  let f = Func.make "f" ~ret_ty:Types.I32 ~params:[ ("x", Types.I32) ] in
  let b = Builder.create f in
  let entry = Builder.new_block b "entry" in
  Builder.position_at_end b entry;
  let slot = Builder.alloca b Types.I32 in
  Builder.store b Types.I32 (Value.Arg 0) slot;
  let v = Builder.load b Types.I32 slot in
  let r = Builder.add b Types.I32 v (Value.i32 1) in
  Builder.ret b (Some r);
  f

let test_builder () =
  let f = build_simple_func () in
  Alcotest.(check int) "one block" 1 (List.length f.Func.blocks);
  Alcotest.(check int) "four instructions" 4 (List.length (Func.entry f).Block.instrs);
  Alcotest.(check bool) "not a declaration" false (Func.is_declaration f)

let test_replace_uses () =
  let f = build_simple_func () in
  (* replace the loaded value with a constant in all uses *)
  let load_id =
    Func.fold_instrs f ~init:(-1) ~g:(fun acc _ i ->
        match i.Instr.kind with Instr.Load _ -> i.Instr.id | _ -> acc)
  in
  Func.replace_uses f ~old_v:(Value.Reg load_id) ~new_v:(Value.i32 41);
  let uses = Func.uses_of f (Value.Reg load_id) in
  Alcotest.(check int) "no uses remain" 0 (List.length uses)

let test_block_successors () =
  let b = Block.make "b" ~term:(Block.Cbr (Value.i1 true, "x", "y")) in
  Alcotest.(check (list string)) "cbr" [ "x"; "y" ] (Block.successors b);
  let b2 = Block.make "b" ~term:(Block.Cbr (Value.i1 true, "x", "x")) in
  Alcotest.(check (list string)) "cbr same target deduped" [ "x" ] (Block.successors b2);
  let b3 =
    Block.make "b" ~term:(Block.Switch (Value.i32 0, [ (0L, "a"); (1L, "b") ], "d"))
  in
  Alcotest.(check (list string)) "switch" [ "a"; "b"; "d" ] (Block.successors b3)

let test_module_utilities () =
  let m = Irmod.create () in
  Irmod.add_func m (build_simple_func ());
  Alcotest.(check bool) "find" true (Irmod.find_func m "f" <> None);
  Alcotest.check_raises "duplicate rejected" (Failure "Irmod.add_func: duplicate function f")
    (fun () -> Irmod.add_func m (build_simple_func ()));
  Alcotest.(check string) "fresh name avoids clash" "f.1" (Irmod.fresh_name m "f");
  Irmod.remove_func m "f";
  Alcotest.(check bool) "removed" true (Irmod.find_func m "f" = None)

(* ------------------------------------------------------------------ *)
(* Printer / parser round-trip                                         *)
(* ------------------------------------------------------------------ *)

let roundtrip m =
  let text = Printer.module_to_string m in
  let m2 = Parser.parse_module text in
  let text2 = Printer.module_to_string m2 in
  Alcotest.(check string) "print/parse/print fixpoint" text text2

let test_roundtrip_simple () =
  let m = Irmod.create ~name:"rt" () in
  Irmod.add_func m (build_simple_func ());
  roundtrip m

let test_roundtrip_rich () =
  let text =
    {|module "rich"
global internal @g : [16 x f64] in shared = zeroinit
global external @c : i32 in global = i32 7
declare i32 @ext(i32, ptr(generic))
define external void @k(%arg0 : i32) kernel(generic, teams=4, threads=32) attrs(noinline) {
entry:
  %0 = alloca [4 x i32], 1
  %1 = spacecast ptr(generic), %0
  store i32 %arg0, %1
  %3 = load i32, %1
  %4 = icmp sge i32 %3, i32 0
  cbr %4, pos, neg
pos:
  %5 = call i32 @ext(%3, %1)
  %6 = sitofp f64, %5
  %7 = fmul f64 %6, f64 0x1p+1
  store f64 %7, @g
  br done
neg:
  %9 = select i32 %4, %3, i32 0
  switch %9, [0 -> done, 1 -> pos], done
done:
  ret
}
|}
  in
  let m = Parser.parse_module text in
  (match Verify.check m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "rich module should verify: %s" e);
  roundtrip m

let test_roundtrip_compiled_program () =
  let m =
    Helpers.compile
      {|
double A[8];
static double helper(double* p) { return p[0] * 2.0; }
int main() {
  int n = 4;
  #pragma omp target teams distribute num_teams(2) thread_limit(4)
  for (int i = 0; i < n; i++) {
    double v = (double)i;
    #pragma omp parallel for
    for (int j = 0; j < 2; j++) {
      #pragma omp atomic
      v += helper(&v);
    }
    A[i] = v;
  }
  return 0;
}
|}
  in
  roundtrip m

let test_parser_errors () =
  let bad input =
    match Parser.parse_module input with
    | exception Parser.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" input
  in
  bad "module \"x\" define";
  bad "module \"x\" global";
  bad {|module "x" define internal void @f() { entry: %0 = bogus i32 %1, %2 ret }|};
  bad {|module "x" define internal void @f() { entry: br }|};
  bad {|module "x" define internal void @f() { entry: }|}

let test_parse_values () =
  let m =
    Parser.parse_module
      {|module "v"
define internal f64 @f() {
entry:
  %0 = fadd f64 f64 1.5, f64 -2.0
  %1 = select f64 i1 1, %0, undef(f64)
  %2 = icmp eq ptr(generic) null(generic), null(generic)
  ret %1
}
|}
  in
  match Verify.check m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "value forms should verify: %s" e

(* ------------------------------------------------------------------ *)
(* Verifier                                                            *)
(* ------------------------------------------------------------------ *)

let expect_invalid text =
  let m = Parser.parse_module text in
  match Verify.check m with
  | Ok () -> Alcotest.fail "verifier should have rejected the module"
  | Error _ -> ()

let test_verify_type_errors () =
  expect_invalid
    {|module "x"
define internal void @f() {
entry:
  %0 = add i32 i32 1, i64 2
  ret
}
|};
  expect_invalid
    {|module "x"
define internal void @f() {
entry:
  %0 = fadd i32 i32 1, i32 2
  ret
}
|};
  expect_invalid
    {|module "x"
define internal void @f() {
entry:
  %0 = load i32, i32 5
  ret
}
|}

let test_verify_ret_mismatch () =
  expect_invalid
    {|module "x"
define internal i32 @f() {
entry:
  ret
}
|};
  expect_invalid
    {|module "x"
define internal i32 @f() {
entry:
  ret f64 1.0
}
|}

let test_verify_bad_branch () =
  expect_invalid
    {|module "x"
define internal void @f() {
entry:
  br nowhere
}
|}

let test_verify_call_arity () =
  expect_invalid
    {|module "x"
declare i32 @g(i32)
define internal void @f() {
entry:
  %0 = call i32 @g(i32 1, i32 2)
  ret
}
|}

let test_verify_use_before_def () =
  expect_invalid
    {|module "x"
define internal void @f() {
entry:
  %0 = add i32 %1, i32 1
  %1 = add i32 i32 1, i32 1
  ret
}
|}

let test_verify_dominance_across_blocks () =
  expect_invalid
    {|module "x"
define internal void @f(%arg0 : i1) {
entry:
  cbr %arg0, a, b
a:
  %0 = add i32 i32 1, i32 1
  br b
b:
  %1 = add i32 %0, i32 1
  ret
}
|}

let test_verify_accepts_dominating_use () =
  let m =
    Parser.parse_module
      {|module "x"
define internal i32 @f(%arg0 : i1) {
entry:
  %0 = add i32 i32 1, i32 1
  cbr %arg0, a, b
a:
  %1 = add i32 %0, i32 1
  br b
b:
  %2 = add i32 %0, i32 2
  ret %2
}
|}
  in
  match Verify.check m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "dominating uses should verify: %s" e

(* ------------------------------------------------------------------ *)
(* CFG, dominators, liveness                                           *)
(* ------------------------------------------------------------------ *)

let diamond () =
  Parser.parse_module
    {|module "d"
define internal i32 @f(%arg0 : i1) {
entry:
  %0 = add i32 i32 1, i32 0
  cbr %arg0, left, right
left:
  %1 = add i32 %0, i32 1
  br join
right:
  %2 = add i32 %0, i32 2
  br join
join:
  %3 = add i32 %0, i32 3
  ret %3
}
|}

let test_cfg () =
  let m = diamond () in
  let f = Irmod.find_func_exn m "f" in
  let cfg = Cfg.compute f in
  Alcotest.(check (list string)) "preds of join" [ "left"; "right" ]
    (List.sort String.compare (Cfg.preds cfg "join"));
  Alcotest.(check (list string)) "succs of entry" [ "left"; "right" ]
    (List.sort String.compare (Cfg.succs cfg "entry"));
  Alcotest.(check bool) "entry first in RPO" true (List.hd cfg.Cfg.order = "entry")

let test_dominators () =
  let m = diamond () in
  let f = Irmod.find_func_exn m "f" in
  let cfg = Cfg.compute f in
  let dom = Cfg.dominators cfg in
  Alcotest.(check bool) "entry dominates join" true (Cfg.dominates dom ~by:"entry" "join");
  Alcotest.(check bool) "left does not dominate join" false
    (Cfg.dominates dom ~by:"left" "join");
  Alcotest.(check bool) "join dominates itself" true (Cfg.dominates dom ~by:"join" "join")

let test_prune_unreachable () =
  let m =
    Parser.parse_module
      {|module "p"
define internal void @f() {
entry:
  ret
dead:
  br dead2
dead2:
  ret
}
|}
  in
  let f = Irmod.find_func_exn m "f" in
  Alcotest.(check bool) "pruned" true (Cfg.prune_unreachable f);
  Alcotest.(check int) "one block left" 1 (List.length f.Func.blocks);
  Alcotest.(check bool) "idempotent" false (Cfg.prune_unreachable f)

let test_liveness_pressure () =
  let m = diamond () in
  let f = Irmod.find_func_exn m "f" in
  let p = Liveness.max_pressure f in
  Alcotest.(check bool) "pressure is small but positive" true (p >= 1 && p <= 4);
  (* a function with many simultaneously live values *)
  let m2 =
    Parser.parse_module
      {|module "p"
define internal i32 @g() {
entry:
  %0 = add i32 i32 1, i32 1
  %1 = add i32 i32 2, i32 2
  %2 = add i32 i32 3, i32 3
  %3 = add i32 i32 4, i32 4
  %4 = add i32 %0, %1
  %5 = add i32 %2, %3
  %6 = add i32 %4, %5
  ret %6
}
|}
  in
  let g = Irmod.find_func_exn m2 "g" in
  Alcotest.(check bool) "wide expression has higher pressure" true
    (Liveness.max_pressure g >= 4)

(* property: round-trip of randomly generated straight-line functions *)
let arb_straightline =
  let open QCheck.Gen in
  let gen =
    list_size (int_range 1 20)
      (oneof
         [
           map2 (fun a b -> `Add (a, b)) (int_bound 100) (int_bound 100);
           map2 (fun a b -> `Mul (a, b)) (int_bound 100) (int_bound 100);
           map (fun a -> `Cmp a) (int_bound 100);
         ])
  in
  QCheck.make gen

let prop_roundtrip_straightline ops =
  let f = Func.make "gen" ~ret_ty:Types.Void ~params:[] in
  let b = Builder.create f in
  let entry = Builder.new_block b "entry" in
  Builder.position_at_end b entry;
  List.iter
    (fun op ->
      match op with
      | `Add (x, y) -> ignore (Builder.add b Types.I32 (Value.i32 x) (Value.i32 y))
      | `Mul (x, y) -> ignore (Builder.mul b Types.I64 (Value.i64 x) (Value.i64 y))
      | `Cmp x ->
        ignore (Builder.icmp b Instr.Slt Types.I32 (Value.i32 x) (Value.i32 50)))
    ops;
  Builder.ret b None;
  let m = Irmod.create () in
  Irmod.add_func m f;
  let text = Printer.module_to_string m in
  let m2 = Parser.parse_module text in
  String.equal text (Printer.module_to_string m2)

let suite =
  [
    Alcotest.test_case "type sizes" `Quick test_sizes;
    Alcotest.test_case "type equality" `Quick test_type_equal;
    Alcotest.test_case "type printing" `Quick test_type_pp;
    Alcotest.test_case "address spaces" `Quick test_spaces;
    Alcotest.test_case "value views" `Quick test_value_views;
    Alcotest.test_case "instr result types" `Quick test_instr_result_ty;
    Alcotest.test_case "instr operands" `Quick test_instr_operands;
    Alcotest.test_case "mnemonic roundtrips" `Quick test_mnemonic_roundtrips;
    Alcotest.test_case "builder" `Quick test_builder;
    Alcotest.test_case "replace uses" `Quick test_replace_uses;
    Alcotest.test_case "block successors" `Quick test_block_successors;
    Alcotest.test_case "module utilities" `Quick test_module_utilities;
    Alcotest.test_case "roundtrip simple" `Quick test_roundtrip_simple;
    Alcotest.test_case "roundtrip rich module" `Quick test_roundtrip_rich;
    Alcotest.test_case "roundtrip compiled program" `Quick test_roundtrip_compiled_program;
    Alcotest.test_case "parser errors" `Quick test_parser_errors;
    Alcotest.test_case "parse value forms" `Quick test_parse_values;
    Alcotest.test_case "verify type errors" `Quick test_verify_type_errors;
    Alcotest.test_case "verify return mismatch" `Quick test_verify_ret_mismatch;
    Alcotest.test_case "verify bad branch" `Quick test_verify_bad_branch;
    Alcotest.test_case "verify call arity" `Quick test_verify_call_arity;
    Alcotest.test_case "verify use before def" `Quick test_verify_use_before_def;
    Alcotest.test_case "verify dominance" `Quick test_verify_dominance_across_blocks;
    Alcotest.test_case "verify accepts dominating use" `Quick test_verify_accepts_dominating_use;
    Alcotest.test_case "cfg" `Quick test_cfg;
    Alcotest.test_case "dominators" `Quick test_dominators;
    Alcotest.test_case "prune unreachable" `Quick test_prune_unreachable;
    Alcotest.test_case "liveness pressure" `Quick test_liveness_pressure;
    Helpers.qtest "roundtrip random straight-line" arb_straightline
      prop_roundtrip_straightline;
  ]

(** Imperative construction of MiniIR functions, in the style of LLVM's
    IRBuilder: the builder holds an insertion point and appends
    instructions, returning the [Value.t] of each result.

    Domain-safety invariant: a builder carries no global state — fresh
    register ids come from the per-function generator ([Func.fresh_reg])
    and fresh names from the per-module [Irmod.fresh_name], so two domains
    building (or optimizing) distinct modules never contend on a shared
    counter.  Keep it that way: never introduce a module-level [Id_gen]
    here (the batch scheduler relies on it; see docs/SCHEDULER.md). *)

type t

val create : Func.t -> t

val set_loc : t -> Support.Loc.t -> unit
(** Source location attached to subsequently inserted instructions. *)

val new_block : t -> string -> Block.t
(** Create and register a block; the label is uniquified if taken. *)

val position_at_end : t -> Block.t -> unit
val current_block : t -> Block.t

val insert : t -> Instr.kind -> Value.t
(** Append an instruction; returns its result value ([undef void] for
    result-less instructions). *)

(** Typed helpers around [insert]. *)

val alloca : t -> ?count:int -> Types.t -> Value.t
val load : t -> Types.t -> Value.t -> Value.t
val store : t -> Types.t -> Value.t -> Value.t -> unit
val gep : t -> ptr_ty:Types.t -> Value.t -> Value.t -> Value.t
val bin : t -> Instr.bin -> Types.t -> Value.t -> Value.t -> Value.t
val icmp : t -> Instr.icmp -> Types.t -> Value.t -> Value.t -> Value.t
val fcmp : t -> Instr.fcmp -> Types.t -> Value.t -> Value.t -> Value.t
val cast : t -> Instr.cast -> Types.t -> Value.t -> Value.t
val select : t -> Types.t -> Value.t -> Value.t -> Value.t -> Value.t
val call : t -> Types.t -> string -> Value.t list -> Value.t
val call_indirect : t -> Types.t -> Value.t -> Value.t list -> Value.t
val atomicrmw : t -> Instr.atomic -> Types.t -> Value.t -> Value.t -> Value.t
val add : t -> Types.t -> Value.t -> Value.t -> Value.t
val sub : t -> Types.t -> Value.t -> Value.t -> Value.t
val mul : t -> Types.t -> Value.t -> Value.t -> Value.t

(** Terminators for the current block. *)

val set_term : t -> Block.term -> unit
val ret : t -> Value.t option -> unit
val br : t -> string -> unit
val cbr : t -> Value.t -> string -> string -> unit
val switch : t -> Value.t -> (int64 * string) list -> string -> unit
val unreachable : t -> unit

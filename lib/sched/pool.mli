(** A fixed-size work-stealing job scheduler on OCaml 5 [Domain]s.

    The pool owns [domains] worker domains.  Each worker has its own deque;
    submitted jobs are distributed round-robin, a worker services its own
    deque newest-first (LIFO, for locality) and steals the oldest job
    (FIFO) from a sibling when its own deque is empty.  The pending-job
    count is bounded: [submit] blocks once [queue_capacity] jobs are
    queued, giving natural backpressure to producers.

    Domain-safety contract for jobs: a job must not touch mutable state
    shared with another job (each compile/simulate job builds its own IR
    module, remark sink and trace; see docs/SCHEDULER.md).  Jobs must not
    themselves call [submit]/[await] on the same pool — the pool is a flat
    worker pool, not a nested fork-join runtime. *)

type t

type 'a future

(** Lifetime statistics of a pool (monotonic; read with {!stats}). *)
type stats = {
  submitted : int;  (** jobs accepted by {!submit} *)
  executed : int;  (** jobs completed (successfully or with an exception) *)
  stolen : int;  (** jobs a worker took from a sibling's deque *)
  max_pending : int;  (** high-water mark of the bounded queue *)
}

val create : ?queue_capacity:int -> domains:int -> unit -> t
(** [create ~domains ()] spawns [domains] worker domains (at least 1).
    [queue_capacity] bounds the number of queued-but-not-started jobs
    (default [4 * domains]; at least 1). *)

val domain_count : t -> int

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a job.  Blocks while the queue is at capacity.  Raises
    [Invalid_argument] if the pool has been shut down. *)

val await : 'a future -> 'a
(** Wait for a job's result.  Re-raises the job's exception (with its
    backtrace) if it failed. *)

val await_timeout : 'a future -> seconds:float -> 'a option
(** Like {!await}, but gives up after [seconds] and returns [None] (the job
    itself keeps running; a later {!await} still works).  Polls — OCaml's
    [Condition] has no timed wait — at a 5ms interval. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list t f xs] runs [f x] for every element as pool jobs and returns
    the results in input order — deterministic output for deterministic
    [f], whatever the execution interleaving.  Equivalent to
    [List.map f xs] observationally when [f] is pure per-element. *)

val map_list_guarded :
  t ->
  ?watchdog_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  ?is_transient:(exn -> bool) ->
  (attempt:int -> 'a -> 'b) ->
  'a list ->
  ('b, exn * Printexc.raw_backtrace) result list
(** {!map_list} with per-job supervision; no exception escapes the batch —
    each job settles to [Ok] or [Error (exn, backtrace)], in input order.

    [watchdog_s]: a job not settled within this many seconds (measured from
    submission, so queue wait counts) is declared hung with a structured
    [Fault.Ompgpu_error.Timeout] — the stalled job keeps its domain until
    it returns on its own, but the batch makes progress.

    Failures satisfying [is_transient] (default: structured errors whose
    [Fault.Ompgpu_error.is_transient] holds — timeouts and allocation
    failures) are retried up to [retries] times with exponential backoff
    ([backoff_s] * 2^attempt).  The job function receives the attempt
    number (0 = first try) so it can derive fresh fault-injector coins. *)

val stats : t -> stats

val shutdown : t -> unit
(** Drain every queued job, then join the worker domains.  Idempotent. *)

val with_pool : ?queue_capacity:int -> domains:int -> (t -> 'a) -> 'a
(** [create], run the callback, always [shutdown]. *)

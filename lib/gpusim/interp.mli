(** The SIMT interpreter.

    Threads run with a run-to-block discipline, each accumulating its own
    cycle clock; synchronization points (barriers, the worker state machine,
    parallel-region joins) align the clocks of the released threads.  The
    host runs as a single thread whose direct calls to kernel functions are
    intercepted as launches.  Device runtime functions ([__kmpc_*],
    [__gpu_*], math builtins, tracing) are interpreted natively here. *)

(** Abnormal terminations raise [Fault.Ompgpu_error.Error] with phase
    [Simulating]: [Sim_trap] for (injected) traps, [Timeout] for fuel
    exhaustion, [Deadlock {barrier}] — carrying the offending "func/block"
    barrier site(s) — for true barrier divergence or a wedged worker state
    machine.  [Rvalue.Sim_error] still covers dynamic value errors. *)

(** Statistics of one kernel launch — the raw material of Figures 10/11. *)
type launch_stats = {
  kernel_name : string;
  mutable cycles : int;  (** modeled kernel time (throughput over teams) *)
  mutable team_cycles_total : int;
  mutable instructions : int;
  mutable loads_global : int;
  mutable loads_shared : int;
  mutable loads_local : int;
  mutable stores_global : int;
  mutable stores_shared : int;
  mutable stores_local : int;
  mutable atomics_global : int;
  mutable atomics_shared : int;
  mutable divergent_branches : int;
      (** threads of one team disagreeing on a branch target at the same
          per-site execution index (structural SIMT-divergence model) *)
  mutable runtime_calls : int;
  mutable barriers : int;
  mutable indirect_calls : int;
  mutable shared_bytes : int;  (** static + stack high water, max over teams *)
  mutable shared_fallbacks : int;
      (** shared-memory budget misses served gracefully from the device heap
          (the globalization fallback path) instead of aborting *)
  mutable heap_high_water : int;  (** concurrency-scaled device-heap footprint *)
  mutable registers : int;  (** static per-thread estimate (Regalloc) *)
  mutable teams : int;
  mutable threads_per_team : int;
}

type t = {
  m : Ir.Irmod.t;
  machine : Machine.t;
  mem : Mem.t;
  mutable trace : Rvalue.t list;  (** [__devrt_trace] output, newest first *)
  mutable kernel_stats : launch_stats list;  (** newest first *)
  mutable cur_stats : launch_stats option;  (** head of [kernel_stats] *)
  team_uid_gen : Support.Util.Id_gen.t;
  mutable fuel : int;
  injector : Fault.Injector.t;
  mutable cur_team : team option;
  funcs : (string, Ir.Func.t) Hashtbl.t;  (** name -> function, built once *)
  plans : (string, fplan) Hashtbl.t;  (** per-function execution plans *)
  mutable bid_gen : int;
}

and team
and fplan

(** Pure operational helpers, exposed for cross-checking against the
    optimizer's constant folding. *)

val exec_bin : Ir.Instr.bin -> Ir.Types.t -> Rvalue.t -> Rvalue.t -> Rvalue.t
val exec_icmp : Ir.Instr.icmp -> Ir.Types.t -> Rvalue.t -> Rvalue.t -> Rvalue.t
val exec_cast : Ir.Instr.cast -> Ir.Types.t -> Rvalue.t -> Rvalue.t

val occupancy_factor : Machine.t -> int -> float
(** Time multiplier from register-limited occupancy: (max_warps/active)^0.75. *)

val create :
  ?fuel:int ->
  ?injector:Fault.Injector.t ->
  ?scratch:Scratch.t ->
  Machine.t ->
  Ir.Irmod.t ->
  t
(** Lay out the module's globals and prepare a simulation.  [fuel] bounds
    the total number of executed instructions (default 2e8).  [injector]
    arms the [Mem_alloc], [Shared_budget] and [Sim_trap] fault sites.
    [scratch] backs the simulated memory with a pool worker's recycled
    arenas (zero-filled on reuse — results stay byte-identical to fresh
    allocation); call {!release} when done with the interpreter. *)

val release : t -> unit
(** Return the memory arenas to the scratch (no-op without one).  The
    interpreter must not be used afterwards. *)

val run_host : ?entry:string -> t -> unit
(** Execute the host [entry] function (default ["main"]).  Kernel launches
    happen synchronously as they are reached.
    @raise Mem.Out_of_memory when a launch exhausts the device heap.
    @raise Rvalue.Sim_error on dynamic errors (bad memory, unknown calls).
    @raise Fault.Ompgpu_error.Error on deadlock, trap or fuel exhaustion. *)

val launch_kernel : t -> Ir.Func.t -> Rvalue.t list -> unit
(** Launch one kernel directly (used by the host interception; exposed for
    tests and tools). *)

val total_kernel_cycles : t -> int
(** Sum of modeled kernel times over all launches (the nvprof metric of the
    paper's evaluation). *)

val trace_values : t -> Rvalue.t list
(** The observable trace, oldest first. *)

val max_shared_bytes : t -> int
val max_registers : t -> int

(** Execution-domain analysis: which threads execute a block, call site or
    function?

    In a generic-mode kernel, [__kmpc_target_init] separates the main thread
    from the workers; code on the main edge is executed by the main thread
    alone.  The inter-procedural part propagates these facts over the call
    graph.  This is the analysis behind HeapToShared ("only executed by the
    main thread of the OpenMP team"), SPMDzation guards, and the folding of
    thread-id queries in sequential regions. *)

type domain = Main_only | Parallel | Both

val join : domain -> domain -> domain
val pp_domain : Format.formatter -> domain -> unit

type t = {
  block_domains : domain Support.Util.String_map.t Support.Util.String_map.t;
      (** kernel name -> block label -> domain *)
  func_domains : domain Support.Util.String_map.t;  (** per-function summary *)
  parallel_regions : Support.Util.String_set.t;
      (** outlined functions passed to [__kmpc_parallel_51] *)
}

val generic_prologue : Ir.Func.t -> (string * string) option
(** Recognize the generic-mode prologue of a kernel; returns
    [(main_label, worker_label)] — the two targets of the
    is-main-thread branch. *)

val find_parallel_regions : Ir.Irmod.t -> Support.Util.String_set.t

val compute : Ir.Irmod.t -> Callgraph.t -> t

val instr_domain : t -> Ir.Func.t -> Ir.Block.t -> domain
(** Domain of the instructions in block [b] of function [f]: the per-block
    fact inside kernels, the function summary elsewhere. *)

val func_domain : t -> string -> domain
val is_parallel_region : t -> string -> bool

(* Directory-backed blob cache.  No Unix dependency beyond stat/time: Sys +
   channels are enough for mkdir-p (via repeated Sys.mkdir), atomic publish
   (write a unique temp file, Sys.rename over the destination) and lookup.

   Entries are self-verifying: a digest header is prepended at store time
   and checked on every read.  An entry that fails the check — torn write,
   disk corruption, an injected bit-flip — is quarantined (moved aside, so
   a later run can inspect it) and reported as a miss: the cache heals by
   recomputing, it never serves corrupt data.

   Governance (PR 10): [create] scrubs the directory — every entry is
   digest-verified eagerly (corrupt ones quarantined on the spot) and the
   surviving sizes seed an in-memory byte ledger.  [store] enforces an
   optional byte quota / entry cap by evicting oldest-written entries
   first (LRU by mtime), and never raises: any failure (ENOSPC, EDQUOT,
   permissions, or the injected [Disk_full] site) is counted, and N
   consecutive failures trip a write-disabling breaker that re-probes
   after a cooldown — a full disk costs warm hits, never a reply.

   The ledger is per-process: peers sharing the directory (fleet shards)
   keep their own, so cross-process evictions make a ledger conservative
   rather than wrong — evicting an already-deleted file is a no-op, and a
   peer's writes are picked up by the next scrub. *)

type t = {
  cache_dir : string;
  injector : Fault.Injector.t;
  on_corrupt : (key:string -> path:string -> unit) option;
  max_bytes : int option;
  max_entries : int option;
  failure_threshold : int;
  reprobe_after_s : float;
  mutex : Mutex.t;
  ledger : (string, int * float) Hashtbl.t;  (* basename -> (bytes, mtime) *)
  mutable ledger_bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable corrupt : int;
  mutable swept : int;
  mutable scrubbed : int;  (* entries digest-verified by the startup scrub *)
  mutable evictions : int;
  mutable store_failures : int;
  mutable consec_failures : int;
  mutable breaker_trips : int;
  mutable disabled_until : float;  (* writes skipped before this time; 0 = open *)
}

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755
    with Sys_error _ when Sys.file_exists path -> ()  (* lost a creation race *)
  end

(* Temp files are only ever alive between [Filename.temp_file] and the
   publishing [Sys.rename] — milliseconds.  A temp older than the age gate
   is an orphan from a writer that died mid-store; the gate is generous so
   a sweep never races a live concurrent writer. *)
let default_temp_age_s = 600.

let default_failure_threshold = 3
let default_reprobe_after_s = 5.0

let temp_prefix = "sched-cache"
let temp_suffix = ".tmp"

let is_temp_name name =
  let lp = String.length temp_prefix and ls = String.length temp_suffix in
  let ln = String.length name in
  ln > lp + ls
  && String.sub name 0 lp = temp_prefix
  && String.sub name (ln - ls) ls = temp_suffix

(* Move orphaned temps aside rather than deleting: like corrupt entries,
   the quarantine directory preserves the evidence for post-mortem. *)
let sweep_temps_in ~max_age_s dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | names ->
    let now = Unix.gettimeofday () in
    Array.fold_left
      (fun n name ->
        if not (is_temp_name name) then n
        else
          let path = Filename.concat dir name in
          match Unix.lstat path with
          | exception Unix.Unix_error _ -> n (* lost a race; already gone *)
          | st ->
            if
              st.Unix.st_kind = Unix.S_REG
              && now -. st.Unix.st_mtime >= max_age_s
            then begin
              let qdir = Filename.concat dir "quarantine" in
              mkdir_p qdir;
              match Sys.rename path (Filename.concat qdir name) with
              | () -> n + 1
              | exception Sys_error _ -> n (* another sweeper won the race *)
            end
            else n)
      0 names

let sweep_temps ?(max_age_s = default_temp_age_s) t =
  let n = sweep_temps_in ~max_age_s t.cache_dir in
  Mutex.lock t.mutex;
  t.swept <- t.swept + n;
  Mutex.unlock t.mutex;
  n

let dir t = t.cache_dir

(* keys are Cache.key digests, but sanitize anyway so a stray caller cannot
   escape the cache directory *)
let path_of t key =
  let safe =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c | _ -> '_')
      key
  in
  Filename.concat t.cache_dir safe

let count_hit t ok =
  Mutex.lock t.mutex;
  if ok then t.hits <- t.hits + 1 else t.misses <- t.misses + 1;
  Mutex.unlock t.mutex

(* Entry format: "sched-blob-v1:" ^ md5-hex(payload) ^ "\n" ^ payload.
   The magic doubles as a format version; headerless files (from an older
   layout or a foreign writer) fail verification like corrupt ones. *)
let header_magic = "sched-blob-v1:"
let digest_hex_len = 32
let header_len = String.length header_magic + digest_hex_len + 1

let encode_entry data = header_magic ^ Digest.to_hex (Digest.string data) ^ "\n" ^ data

let decode_entry raw =
  if
    String.length raw >= header_len
    && String.sub raw 0 (String.length header_magic) = header_magic
    && raw.[header_len - 1] = '\n'
  then begin
    let digest = String.sub raw (String.length header_magic) digest_hex_len in
    let data = String.sub raw header_len (String.length raw - header_len) in
    if String.equal digest (Digest.to_hex (Digest.string data)) then Some data else None
  end
  else None

(* ---- ledger (call with t.mutex held) ---- *)

let ledger_forget_locked t name =
  match Hashtbl.find_opt t.ledger name with
  | Some (bytes, _) ->
    Hashtbl.remove t.ledger name;
    t.ledger_bytes <- t.ledger_bytes - bytes
  | None -> ()

let ledger_record_locked t name bytes mtime =
  ledger_forget_locked t name;
  Hashtbl.replace t.ledger name (bytes, mtime);
  t.ledger_bytes <- t.ledger_bytes + bytes

(* Oldest mtime first; basename ascending on ties, so eviction order is
   deterministic under the logical store clock. *)
let coldest_locked t =
  Hashtbl.fold
    (fun name (bytes, mtime) best ->
      match best with
      | Some (_, _, bm) when bm < mtime -> best
      | Some (bn, _, bm) when bm = mtime && bn <= name -> best
      | _ -> Some (name, bytes, mtime))
    t.ledger None

let over_quota_locked t =
  (match t.max_bytes with Some cap -> t.ledger_bytes > cap | None -> false)
  || match t.max_entries with
     | Some cap -> Hashtbl.length t.ledger > cap
     | None -> false

let rec evict_over_locked t =
  if over_quota_locked t then
    match coldest_locked t with
    | None -> ()
    | Some (name, bytes, _) ->
      Hashtbl.remove t.ledger name;
      t.ledger_bytes <- t.ledger_bytes - bytes;
      t.evictions <- t.evictions + 1;
      (try Sys.remove (Filename.concat t.cache_dir name)
       with Sys_error _ -> ()  (* a peer already deleted it; ledger was stale *));
      evict_over_locked t

(* Move a failed entry aside rather than deleting it: the quarantine
   directory preserves the evidence for post-mortem without ever being
   consulted by lookups. *)
let quarantine t ~key path =
  Mutex.lock t.mutex;
  t.corrupt <- t.corrupt + 1;
  ledger_forget_locked t (Filename.basename path);
  Mutex.unlock t.mutex;
  let qdir = Filename.concat t.cache_dir "quarantine" in
  mkdir_p qdir;
  (try Sys.rename path (Filename.concat qdir (Filename.basename path))
   with Sys_error _ -> ()  (* lost a race with another reader; already moved *));
  match t.on_corrupt with Some f -> f ~key ~path | None -> ()

(* Entry basenames come out of [path_of]'s sanitizer, so a name with any
   character outside its charset (a dot, a temp suffix) was never written
   by this cache — not ours to scrub or quarantine. *)
let is_entry_name name =
  name <> ""
  && String.for_all
       (fun c ->
         match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> true | _ -> false)
       name

(* Startup scrub: digest-verify every entry eagerly, quarantining failures
   now (not on first lookup) and seeding the byte ledger with the
   survivors — so the quota holds from the first store, over entries this
   process never wrote. *)
let scrub t =
  match Sys.readdir t.cache_dir with
  | exception Sys_error _ -> ()
  | names ->
    Array.iter
      (fun name ->
        if is_entry_name name then
          let path = Filename.concat t.cache_dir name in
          match Unix.lstat path with
          | exception Unix.Unix_error _ -> ()
          | st when st.Unix.st_kind <> Unix.S_REG -> () (* quarantine/ etc *)
          | st -> (
            match In_channel.with_open_bin path In_channel.input_all with
            | exception Sys_error _ -> quarantine t ~key:name path
            | raw -> (
              match decode_entry raw with
              | Some _ ->
                Mutex.lock t.mutex;
                t.scrubbed <- t.scrubbed + 1;
                ledger_record_locked t name (String.length raw) st.Unix.st_mtime;
                Mutex.unlock t.mutex
              | None -> quarantine t ~key:name path)))
      names

let create ?(injector = Fault.Injector.none) ?on_corrupt
    ?(temp_age_s = default_temp_age_s) ?max_bytes ?max_entries
    ?(failure_threshold = default_failure_threshold)
    ?(reprobe_after_s = default_reprobe_after_s) ~dir () =
  mkdir_p dir;
  let t =
    {
      cache_dir = dir;
      injector;
      on_corrupt;
      max_bytes = Option.map (max 0) max_bytes;
      max_entries = Option.map (max 0) max_entries;
      failure_threshold = max 1 failure_threshold;
      reprobe_after_s;
      mutex = Mutex.create ();
      ledger = Hashtbl.create 64;
      ledger_bytes = 0;
      hits = 0;
      misses = 0;
      corrupt = 0;
      swept = 0;
      scrubbed = 0;
      evictions = 0;
      store_failures = 0;
      consec_failures = 0;
      breaker_trips = 0;
      disabled_until = 0.;
    }
  in
  ignore (sweep_temps ~max_age_s:temp_age_s t);
  scrub t;
  (* the scrub may have found more bytes than the quota allows (a smaller
     cap than last run, or a peer's writes): converge immediately *)
  Mutex.lock t.mutex;
  evict_over_locked t;
  Mutex.unlock t.mutex;
  t

(* TOCTOU-free lookup: open directly instead of testing existence first —
   a concurrent quarantine/eviction rename between the two would leak a
   Sys_error out of what must always be a plain miss. *)
let find t ~key =
  let path = path_of t key in
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ ->
    count_hit t false;
    None
  | raw -> (
    match decode_entry raw with
    | Some data ->
      count_hit t true;
      Some data
    | None ->
      quarantine t ~key path;
      count_hit t false;
      None)

(* Flip one payload bit after the digest was computed: the entry is
   well-formed on disk but fails verification on the next read. *)
let corrupt_entry entry =
  let b = Bytes.of_string entry in
  let pos = min (Bytes.length b - 1) header_len in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
  Bytes.to_string b

let record_store_failure t =
  Mutex.lock t.mutex;
  t.store_failures <- t.store_failures + 1;
  t.consec_failures <- t.consec_failures + 1;
  if t.consec_failures >= t.failure_threshold && t.disabled_until = 0. then begin
    t.breaker_trips <- t.breaker_trips + 1;
    t.disabled_until <- Unix.gettimeofday () +. t.reprobe_after_s
  end
  else if t.consec_failures >= t.failure_threshold then
    (* probe failed: stay disabled for another cooldown *)
    t.disabled_until <- Unix.gettimeofday () +. t.reprobe_after_s;
  Mutex.unlock t.mutex

let record_store_success t ~name ~bytes =
  Mutex.lock t.mutex;
  t.consec_failures <- 0;
  t.disabled_until <- 0.;
  ledger_record_locked t name bytes (Unix.gettimeofday ());
  evict_over_locked t;
  Mutex.unlock t.mutex

(* Never-fail store: a cache write is an optimization, so no failure of it
   may surface to the caller — the result was already computed.  While the
   breaker is open, stores are skipped outright (no syscalls against a
   disk known to be full) until the re-probe time, when the next store
   attempt doubles as the probe. *)
let store t ~key ~data =
  let skip =
    Mutex.lock t.mutex;
    let s = t.disabled_until > 0. && Unix.gettimeofday () < t.disabled_until in
    Mutex.unlock t.mutex;
    s
  in
  if not skip then
    if Fault.Injector.fire t.injector Fault.Injector.Disk_full then
      record_store_failure t
    else begin
      let path = path_of t key in
      let entry = encode_entry data in
      let entry =
        if Fault.Injector.fire t.injector Fault.Injector.Cache_corrupt then
          corrupt_entry entry
        else entry
      in
      (* Filename.temp_file picks a name unique across processes; the
         rename is same-directory, so the publish is atomic.  A crash
         between create and rename orphans the temp — the age-gated
         startup sweep reclaims it. *)
      match
        let tmp =
          Filename.temp_file ~temp_dir:t.cache_dir temp_prefix temp_suffix
        in
        match
          Out_channel.with_open_bin tmp (fun oc ->
              Out_channel.output_string oc entry);
          Sys.rename tmp path
        with
        | () -> ()
        | exception e ->
          (try Sys.remove tmp with Sys_error _ -> ());
          raise e
      with
      | () -> record_store_success t ~name:(Filename.basename path)
                ~bytes:(String.length entry)
      | exception (Sys_error _ | Unix.Unix_error _) -> record_store_failure t
    end

let find_or_compute t ~key f =
  match find t ~key with
  | Some data -> data
  | None ->
    let data = f () in
    store t ~key ~data;
    data

let with_lock t f =
  Mutex.lock t.mutex;
  let v = f () in
  Mutex.unlock t.mutex;
  v

let hits t = with_lock t (fun () -> t.hits)
let misses t = with_lock t (fun () -> t.misses)
let corrupt t = with_lock t (fun () -> t.corrupt)
let swept t = with_lock t (fun () -> t.swept)
let scrubbed t = with_lock t (fun () -> t.scrubbed)
let evictions t = with_lock t (fun () -> t.evictions)
let bytes t = with_lock t (fun () -> t.ledger_bytes)
let entries t = with_lock t (fun () -> Hashtbl.length t.ledger)
let store_failures t = with_lock t (fun () -> t.store_failures)
let breaker_trips t = with_lock t (fun () -> t.breaker_trips)

let writes_disabled t =
  with_lock t (fun () ->
      t.disabled_until > 0. && Unix.gettimeofday () < t.disabled_until)

let max_bytes t = t.max_bytes

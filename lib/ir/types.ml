(* MiniIR types.

   The IR is byte-addressed: pointers are opaque and carry only an address
   space, mirroring LLVM's opaque-pointer model.  Address spaces follow the
   GPU mapping of the paper's Figure 2: global memory is visible to the whole
   league, shared memory to one team, local memory to a single thread. *)

type addrspace =
  | Generic  (* may alias any space; produced by address-space casts *)
  | Global
  | Shared
  | Local

type t =
  | Void
  | I1
  | I8
  | I32
  | I64
  | F32
  | F64
  | Ptr of addrspace
  | Arr of int * t
  | Fn of t * t list  (* return type, parameter types; only used for casts/checks *)

let rec equal a b =
  match (a, b) with
  | Void, Void | I1, I1 | I8, I8 | I32, I32 | I64, I64 | F32, F32 | F64, F64 -> true
  | Ptr s1, Ptr s2 -> s1 = s2
  | Arr (n1, t1), Arr (n2, t2) -> n1 = n2 && equal t1 t2
  | Fn (r1, ps1), Fn (r2, ps2) ->
    equal r1 r2 && List.length ps1 = List.length ps2 && List.for_all2 equal ps1 ps2
  | (Void | I1 | I8 | I32 | I64 | F32 | F64 | Ptr _ | Arr _ | Fn _), _ -> false

let rec size_of = function
  | Void -> 0
  | I1 | I8 -> 1
  | I32 | F32 -> 4
  | I64 | F64 | Ptr _ -> 8
  | Arr (n, t) -> n * size_of t
  | Fn _ -> 8

let is_integer = function I1 | I8 | I32 | I64 -> true | _ -> false
let is_float = function F32 | F64 -> true | _ -> false
let is_pointer = function Ptr _ -> true | _ -> false

let bit_width = function
  | I1 -> 1
  | I8 -> 8
  | I32 -> 32
  | I64 -> 64
  | t -> Support.Util.failf "Types.bit_width: not an integer type (%d bytes)" (size_of t)

let space_name = function
  | Generic -> "generic"
  | Global -> "global"
  | Shared -> "shared"
  | Local -> "local"

let space_of_name = function
  | "generic" -> Some Generic
  | "global" -> Some Global
  | "shared" -> Some Shared
  | "local" -> Some Local
  | _ -> None

let rec pp ppf = function
  | Void -> Fmt.string ppf "void"
  | I1 -> Fmt.string ppf "i1"
  | I8 -> Fmt.string ppf "i8"
  | I32 -> Fmt.string ppf "i32"
  | I64 -> Fmt.string ppf "i64"
  | F32 -> Fmt.string ppf "f32"
  | F64 -> Fmt.string ppf "f64"
  | Ptr s -> Fmt.pf ppf "ptr(%s)" (space_name s)
  | Arr (n, t) -> Fmt.pf ppf "[%d x %a]" n pp t
  | Fn (r, ps) -> Fmt.pf ppf "fn(%a)->%a" Fmt.(list ~sep:(any ", ") pp) ps pp r

let to_string t = Fmt.str "%a" pp t

(** The OpenMPOpt pass driver: the paper's optimization pipeline.

    [run] executes, over a MiniIR module produced by the front-end:
    aggressive internalization, then rounds of mode-invariant runtime-call
    folding, deglobalization (HeapToStack / HeapToShared), SPMDzation,
    the custom state machine rewrite, execution-mode folding, runtime-call
    deduplication, dead-parallel-region elimination and generic cleanup. *)

(** Pass toggles.  The [disable_*] flags mirror the paper artifact's
    LLVM flags [openmp-opt-disable-spmdization],
    [openmp-opt-disable-deglobalization],
    [openmp-opt-disable-state-machine-rewrite] and
    [openmp-opt-disable-folding]; the remaining toggles support the
    ablations called out in DESIGN.md. *)
type options = {
  disable_spmdization : bool;
  disable_deglobalization : bool;
  disable_state_machine_rewrite : bool;
  disable_folding : bool;
  disable_internalization : bool;  (** ablation: Section IV internalization *)
  disable_guard_grouping : bool;  (** ablation: Fig. 7 side-effect grouping *)
  disable_heap_to_shared : bool;  (** isolate plain HeapToStack (Fig. 11d) *)
  rounds : int;  (** pipeline iterations; 3 matches early+late scheduling *)
}

val default_options : options
(** Everything enabled, three rounds. *)

val options_fingerprint : options -> string
(** Stable, human-readable identity of an option set; used as part of the
    content address of a pipeline job in the scheduler's result cache
    (see docs/SCHEDULER.md).  Covers every field. *)

val all_disabled : options
(** Every OpenMP-specific optimization off (the "No OpenMP Optimization"
    build of Figure 11); generic cleanup still runs. *)

(** What the pipeline did — the counts behind the paper's Figure 9. *)
type report = {
  remarks : Remark.t list;  (** deduplicated, in emission order *)
  internalized : int;
  heap_to_stack : int;  (** allocations moved back to the stack (OMP110) *)
  heap_to_shared : int;  (** allocations turned into static shared memory (OMP111) *)
  shared_bytes : int;  (** bytes of static shared memory introduced *)
  spmdized : int;  (** kernels converted to SPMD mode (OMP120) *)
  guards : int;  (** guarded regions emitted during SPMDzation *)
  custom_state_machines : int;  (** kernels rewritten without function pointers *)
  csm_fallbacks : int;  (** rewrites that kept an indirect fallback *)
  folds_exec_mode : int;  (** __kmpc_is_spmd_exec_mode calls folded *)
  folds_parallel_level : int;  (** __kmpc_parallel_level calls folded *)
  folds_thread_exec : int;  (** thread-id queries folded to 0 in main-only code *)
  folds_launch_bounds : int;  (** launch-parameter queries folded to constants *)
  deduplicated_calls : int;  (** runtime queries deduplicated (OMP170) *)
  dead_regions : int;  (** effect-free parallel regions removed (OMP160) *)
}

val empty_report : report

val counters_of_report : report -> (string * int) list
(** The int fields of the report as named counters, in a stable order (the
    keys of the [--stats-json] export; remarks are not included). *)

val report_to_json : report -> Observe.Json.t
(** Counters plus the remark list (schema in docs/OBSERVABILITY.md). *)

val pp_report : Format.formatter -> report -> unit

val run :
  ?options:options ->
  ?injector:Fault.Injector.t ->
  ?trace:Observe.Trace.t ->
  ?sink:Remark.sink ->
  Ir.Irmod.t ->
  report
(** [run m] optimizes [m] in place and reports what happened.  The module
    remains verifier-clean; every transformation preserves the observable
    trace semantics of the program (checked by the differential test suite).

    [injector] arms the [Pass_crash] fault site: each executed pass first
    draws a coin and raises a structured
    [Fault.Ompgpu_error.Pass_crash {pass; round}] error when it fires —
    exercising the driver-level recovery paths.

    All mutable pipeline state (remark sink, counters, trace) is local to
    one [run] invocation, so concurrent runs on distinct modules from
    different domains are safe and cannot observe each other's remarks.
    [sink] injects a caller-owned (fresh, per-job) remark sink; when
    omitted, a private one is created.

    When [trace] is given, every executed pass records one
    [Observe.Trace.event] per round: wall time, module and per-function IR
    deltas, and the increments to the report counters (plus a ["remarks"]
    pseudo-counter with the number of remarks the pass emitted).  Disabled
    passes record nothing. *)

(** Streaming FNV-1a content hash in a native 63-bit int: one multiply per
    byte, zero allocation.  Replaces MD5 for cache addressing — collision
    resistance against accident, not adversaries.  Deterministic on any
    64-bit platform; not a cross-platform wire format. *)

type t = private int

val empty : t
val add_char : t -> char -> t
val add_string : t -> string -> t

val add_int : t -> int -> t
(** Folds the int's 8 low-order bytes; used to length-frame parts so
    [["ab"; "c"]] and [["a"; "bc"]] cannot collide. *)

val to_hex : t -> string
(** 16 hex digits of the final state. *)

(* Regenerate every table and figure of the paper's evaluation section.

     dune exec bin/run_experiments.exe                 # everything, sequential
     dune exec bin/run_experiments.exe -- -j 4         # everything, 4 domains
     dune exec bin/run_experiments.exe -- fig9
     dune exec bin/run_experiments.exe -- fig11 xsbench --tiny

   Every figure collects its measurements through the Sched work-stealing
   pool ([-j N], default 1) and a shared content-addressed result cache, so
   configurations that repeat across tables (e.g. dev0 appears in Figures
   9, 10 and 11) are compiled and simulated once.  Tables are rendered from
   ordered batch results: the output is byte-identical at every [-j].

   Flags come from Cli_common (the same [-j]/[--jobs]/[--tiny] every
   driver speaks); the tables come through the Ompgpu_api façade. *)

open Cmdliner
module A = Ompgpu_api

let run targets tiny jobs =
  let scale = if tiny then A.App.Tiny else A.App.Bench in
  let machine = Gpusim.Machine.bench_machine in
  Sched.Pool.with_pool ~domains:jobs @@ fun pool ->
  let cache : A.Runner.outcome Sched.Cache.t = Sched.Cache.create () in
  let fig9 () = A.Tables.fig9 ~machine ~scale ~pool ~cache () in
  let fig10 () = A.Tables.fig10 ~machine ~scale ~pool ~cache () in
  let fig11_all () = A.Tables.fig11_all ~machine ~scale ~pool ~cache () in
  let ablations () = A.Tables.ablations ~machine ~scale ~pool ~cache () in
  let all () =
    print_string (fig9 ());
    print_newline ();
    print_string (fig10 ());
    print_newline ();
    print_string (fig11_all ());
    print_newline ();
    print_string (ablations ())
  in
  match targets with
  | [] ->
    all ();
    0
  | [ "fig9" ] ->
    print_string (fig9 ());
    0
  | [ "fig10" ] ->
    print_string (fig10 ());
    0
  | [ "fig11" ] ->
    print_string (fig11_all ());
    0
  | [ "fig11"; name ] -> (
    match A.Apps.find name with
    | Some app ->
      print_string (A.Tables.fig11 ~machine ~scale ~pool ~cache app);
      0
    | None ->
      Fmt.epr "run_experiments: unknown app %s@." name;
      2)
  | [ "ablations" ] ->
    print_string (ablations ());
    0
  | _ ->
    Fmt.epr "usage: run_experiments [fig9|fig10|fig11 [app]|ablations] [--tiny] [-j N]@.";
    2

let targets_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"TARGET"
        ~doc:"What to regenerate: fig9, fig10, fig11 [APP], ablations; \
              everything when absent")

let cmd =
  let doc = "regenerate the paper's evaluation tables and figures" in
  Cmd.v
    (Cmd.info "run_experiments" ~doc)
    Term.(const run $ targets_arg $ Cli_common.tiny $ Cli_common.jobs)

let () = exit (Cmd.eval' cmd)

(* IR-level tests of individual optimizer passes on hand-written modules,
   covering paths the source-level tests cannot isolate. *)

open Openmpopt

let parse text =
  let m = Ir.Parser.parse_module text in
  Devrt.Registry.declare_in m;
  m

(* ------------------------------------------------------------------ *)
(* Internalization corner cases                                        *)
(* ------------------------------------------------------------------ *)

let test_internalize_weak_not_cloned () =
  let m =
    parse
      {|module "w"
define weak f64 @weak_helper(%arg0 : f64) {
entry:
  ret %arg0
}
define external i32 @main() {
entry:
  %0 = call f64 @weak_helper(f64 1.0)
  ret i32 0
}
|}
  in
  let sink = Remark.sink () in
  let n = Internalize.run m sink in
  Alcotest.(check int) "weak not internalized" 0 n;
  Alcotest.(check int) "OMP140 emitted" 1 (Remark.count ~id:140 sink)

let test_internalize_redirects_calls () =
  let m =
    parse
      {|module "i"
define external f64 @helper(%arg0 : f64) {
entry:
  ret %arg0
}
define external i32 @main() {
entry:
  %0 = call f64 @helper(f64 1.0)
  ret i32 0
}
|}
  in
  let sink = Remark.sink () in
  let n = Internalize.run m sink in
  Alcotest.(check int) "one function internalized" 1 n;
  let main = Ir.Irmod.find_func_exn m "main" in
  let calls_internalized =
    Ir.Func.fold_instrs main ~init:false ~g:(fun acc _ i ->
        acc || Ir.Instr.callee_name i = Some "helper.internalized")
  in
  Alcotest.(check bool) "call redirected to the internal copy" true calls_internalized;
  (match Ir.Verify.check m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "post-internalize verify: %s" e)

(* ------------------------------------------------------------------ *)
(* Runtime-call deduplication                                          *)
(* ------------------------------------------------------------------ *)

let count_calls f name =
  Ir.Func.fold_instrs f ~init:0 ~g:(fun acc _ i ->
      if Ir.Instr.callee_name i = Some name then acc + 1 else acc)

let test_dedup_dominating () =
  let m =
    parse
      {|module "d"
define internal i32 @f(%arg0 : i1) {
entry:
  %0 = call i32 @__gpu_thread_id()
  cbr %arg0, a, b
a:
  %1 = call i32 @__gpu_thread_id()
  %2 = add i32 %0, %1
  ret %2
b:
  %3 = call i32 @__gpu_thread_id()
  ret %3
}
|}
  in
  let sink = Remark.sink () in
  let n = Dedup.dedup_runtime_calls m sink in
  Alcotest.(check int) "two dominated calls removed" 2 n;
  let f = Ir.Irmod.find_func_exn m "f" in
  Alcotest.(check int) "one query left" 1 (count_calls f "__gpu_thread_id");
  Alcotest.(check int) "OMP170 emitted" 1 (Remark.count ~id:170 sink);
  match Ir.Verify.check m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "post-dedup verify: %s" e

let test_dedup_respects_dominance () =
  (* calls in sibling branches do not dominate each other: both stay *)
  let m =
    parse
      {|module "d2"
define internal i32 @f(%arg0 : i1) {
entry:
  cbr %arg0, a, b
a:
  %0 = call i32 @__gpu_thread_id()
  ret %0
b:
  %1 = call i32 @__gpu_thread_id()
  ret %1
}
|}
  in
  let sink = Remark.sink () in
  let n = Dedup.dedup_runtime_calls m sink in
  Alcotest.(check int) "nothing removed" 0 n

(* ------------------------------------------------------------------ *)
(* Dead parallel-region elimination                                    *)
(* ------------------------------------------------------------------ *)

let test_dead_region_removed () =
  let m =
    parse
      {|module "dr"
define internal void @pure_region(%arg0 : ptr(generic)) {
entry:
  %0 = alloca f64, 1
  store f64 f64 1.0, %0
  %2 = load f64, %0
  ret
}
define internal void @effect_region(%arg0 : ptr(generic)) {
entry:
  call void @__devrt_trace(i64 1)
  ret
}
define external void @k() kernel(generic, teams=1, threads=2) {
entry:
  call void @__kmpc_parallel_51(@pure_region, i64 -1, null(generic), i32 0)
  call void @__kmpc_parallel_51(@effect_region, i64 -1, null(generic), i32 0)
  ret
}
|}
  in
  let sink = Remark.sink () in
  let n = Dedup.delete_dead_regions m sink in
  Alcotest.(check int) "only the pure region removed" 1 n;
  let k = Ir.Irmod.find_func_exn m "k" in
  Alcotest.(check int) "one launch left" 1 (count_calls k "__kmpc_parallel_51");
  Alcotest.(check int) "OMP160 emitted" 1 (Remark.count ~id:160 sink)

(* ------------------------------------------------------------------ *)
(* Folding consensus                                                   *)
(* ------------------------------------------------------------------ *)

let two_kernel_module ~same_mode =
  parse
    (Printf.sprintf
       {|module "f"
define internal i1 @query() {
entry:
  %%0 = call i1 @__kmpc_is_spmd_exec_mode()
  ret %%0
}
define external void @k1() kernel(spmd, teams=1, threads=2) {
entry:
  %%0 = call i1 @query()
  ret
}
define external void @k2() kernel(%s, teams=1, threads=2) {
entry:
  %%0 = call i1 @query()
  ret
}
|}
       (if same_mode then "spmd" else "generic"))

let fold_count m =
  let cg = Analysis.Callgraph.compute m in
  let d = Analysis.Exec_domain.compute m cg in
  (Fold.run ~fold_exec_mode:true m d).Fold.exec_mode

let test_fold_needs_consensus () =
  Alcotest.(check int) "same-mode kernels fold the shared query" 1
    (fold_count (two_kernel_module ~same_mode:true));
  Alcotest.(check int) "mixed-mode kernels block the fold" 0
    (fold_count (two_kernel_module ~same_mode:false))

let test_fold_launch_bounds_mixed () =
  let m =
    parse
      {|module "lb"
define internal i32 @width() {
entry:
  %0 = call i32 @__gpu_num_threads()
  ret %0
}
define external void @k1() kernel(spmd, teams=2, threads=8) {
entry:
  %0 = call i32 @width()
  ret
}
define external void @k2() kernel(spmd, teams=2, threads=16) {
entry:
  %0 = call i32 @width()
  ret
}
|}
  in
  let cg = Analysis.Callgraph.compute m in
  let d = Analysis.Exec_domain.compute m cg in
  let counts = Fold.run m d in
  Alcotest.(check int) "differing thread limits block the fold" 0
    counts.Fold.launch_bounds

(* ------------------------------------------------------------------ *)
(* SPMDzation / CSM on a kernel without parallel regions               *)
(* ------------------------------------------------------------------ *)

let no_region_kernel () =
  Helpers.compile
    {|
double Out[2];
int main() {
  #pragma omp target teams num_teams(1) thread_limit(2)
  {
    Out[0] = 1.0;
    Out[1] = 2.0;
  }
  trace_f64(Out[0] + Out[1]);
  return 0;
}
|}

let test_kernel_without_regions () =
  let m = no_region_kernel () in
  let report = Helpers.optimize m in
  (* SPMDzation still converts it (side effects guarded) *)
  Alcotest.(check int) "converted" 1 report.Pass_manager.spmdized;
  Alcotest.check Helpers.trace_testable "still computes" [ "f:3" ]
    (Helpers.run_trace ~options:Pass_manager.default_options
       {|
double Out[2];
int main() {
  #pragma omp target teams num_teams(1) thread_limit(2)
  {
    Out[0] = 1.0;
    Out[1] = 2.0;
  }
  trace_f64(Out[0] + Out[1]);
  return 0;
}
|})

let test_csm_on_kernel_without_regions () =
  let m = no_region_kernel () in
  let options =
    { Pass_manager.default_options with Pass_manager.disable_spmdization = true }
  in
  let report = Helpers.optimize ~options m in
  Alcotest.(check int) "no custom state machine built" 0
    report.Pass_manager.custom_state_machines;
  Alcotest.(check bool) "OMP133 notes the empty state machine" true
    (List.exists (fun r -> r.Remark.id = 133) report.Pass_manager.remarks)

(* ------------------------------------------------------------------ *)
(* Simplify details                                                    *)
(* ------------------------------------------------------------------ *)

let test_simplify_merges_chains () =
  let m =
    parse
      {|module "m"
define internal i64 @f() {
entry:
  br a
a:
  %0 = add i64 i64 1, i64 2
  br b
b:
  %1 = add i64 %0, i64 3
  br c
c:
  ret %1
}
|}
  in
  ignore (Simplify.run m);
  let f = Ir.Irmod.find_func_exn m "f" in
  Alcotest.(check int) "chain merged into entry" 1 (List.length f.Ir.Func.blocks)

let test_simplify_keeps_loops () =
  let m =
    parse
      {|module "l"
define internal i64 @f(%arg0 : i64) {
entry:
  %0 = alloca i64, 1
  store i64 i64 0, %0
  br head
head:
  %2 = load i64, %0
  %3 = icmp slt i64 %2, %arg0
  cbr %3, body, exit
body:
  %4 = add i64 %2, i64 1
  store i64 %4, %0
  br head
exit:
  ret %2
}
|}
  in
  ignore (Simplify.run m);
  let f = Ir.Irmod.find_func_exn m "f" in
  Alcotest.(check bool) "loop structure preserved" true (List.length f.Ir.Func.blocks >= 3);
  match Ir.Verify.check m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "post-simplify verify: %s" e

let test_heap_to_shared_not_in_parallel_domain () =
  (* an allocation reachable from a parallel region must not become a single
     static shared slot (every thread needs its own) *)
  let m =
    parse
      {|module "hs"
declare void @opaque_capture(ptr(generic))
define internal void @region(%arg0 : ptr(generic)) {
entry:
  %0 = call ptr(generic) @__kmpc_alloc_shared(i64 8)
  call void @opaque_capture(%0)
  call void @__kmpc_free_shared(%0, i64 8)
  ret
}
define external void @k() kernel(generic, teams=1, threads=4) {
entry:
  call void @__kmpc_parallel_51(@region, i64 -1, null(generic), i32 0)
  ret
}
|}
  in
  let cg = Analysis.Callgraph.compute m in
  let d = Analysis.Exec_domain.compute m cg in
  let sink = Remark.sink () in
  let res = Deglobalize.run m d sink in
  Alcotest.(check int) "no shared placement in parallel context" 0
    res.Deglobalize.to_shared;
  Alcotest.(check int) "no stack placement either (captured)" 0 res.Deglobalize.to_stack;
  Alcotest.(check bool) "OMP112 reported" true (Remark.count ~id:112 sink > 0)

let test_omp100_unknown_runtime_call () =
  let m =
    parse
      {|module "u"
declare void @__kmpc_mystery_call()
define external i32 @main() {
entry:
  call void @__kmpc_mystery_call()
  ret i32 0
}
|}
  in
  let report = Openmpopt.Pass_manager.run m in
  Alcotest.(check bool) "OMP100 flags the unknown runtime function" true
    (List.exists (fun r -> r.Remark.id = 100) report.Pass_manager.remarks)

let test_no_openmp_assumption_avoids_csm_fallback () =
  let src assume =
    Printf.sprintf
      {|
%s
extern double pure_math(double x);
#pragma omp assume ext_spmd_amenable
%s
extern void side_effecting();
double Out[4];
int main() {
  #pragma omp target teams num_teams(1) thread_limit(4)
  {
    side_effecting();
    Out[0] = pure_math(1.0);
    #pragma omp parallel
    { Out[omp_get_thread_num()] = 2.0; }
  }
  return 0;
}
|}
      assume assume
  in
  let options =
    { Pass_manager.default_options with Pass_manager.disable_spmdization = true }
  in
  (* the externals could contain hidden parallel regions: fallback needed *)
  let m1 = Helpers.compile (src "") in
  let r1 = Helpers.optimize ~options m1 in
  (* with omp_no_openmp on both, the cascade is complete *)
  let m2 = Helpers.compile (src "#pragma omp assume ext_no_openmp") in
  let r2 = Helpers.optimize ~options m2 in
  Alcotest.(check int) "fallback without the assumption" 1 r1.Pass_manager.csm_fallbacks;
  Alcotest.(check int) "no fallback with ext_no_openmp" 0 r2.Pass_manager.csm_fallbacks

let suite =
  [
    Alcotest.test_case "OMP100 unknown runtime call" `Quick test_omp100_unknown_runtime_call;
    Alcotest.test_case "ext_no_openmp avoids CSM fallback" `Quick
      test_no_openmp_assumption_avoids_csm_fallback;
    Alcotest.test_case "internalize: weak kept" `Quick test_internalize_weak_not_cloned;
    Alcotest.test_case "internalize: calls redirected" `Quick test_internalize_redirects_calls;
    Alcotest.test_case "dedup: dominating call wins" `Quick test_dedup_dominating;
    Alcotest.test_case "dedup: siblings kept" `Quick test_dedup_respects_dominance;
    Alcotest.test_case "dead region removed" `Quick test_dead_region_removed;
    Alcotest.test_case "fold: mode consensus" `Quick test_fold_needs_consensus;
    Alcotest.test_case "fold: launch bounds need agreement" `Quick
      test_fold_launch_bounds_mixed;
    Alcotest.test_case "kernel without regions SPMDizes" `Quick test_kernel_without_regions;
    Alcotest.test_case "CSM skips region-free kernels" `Quick
      test_csm_on_kernel_without_regions;
    Alcotest.test_case "simplify merges chains" `Quick test_simplify_merges_chains;
    Alcotest.test_case "simplify keeps loops" `Quick test_simplify_keeps_loops;
    Alcotest.test_case "heap-to-shared respects domains" `Quick
      test_heap_to_shared_not_in_parallel_domain;
  ]

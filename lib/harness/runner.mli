(** Compile + optimize + simulate one proxy application under one build
    configuration, collecting the metrics the paper reports. *)

type metrics = {
  cycles : int;
  smem_bytes : int;
  registers : int;
  heap_high_water : int;
  instructions : int;
  barriers : int;
  indirect_calls : int;
  runtime_calls : int;
  checksum : float option;  (** the app's traced result, for cross-checking *)
  report : Openmpopt.Pass_manager.report option;  (** for Dev builds *)
}

type outcome =
  | Ok of metrics
  | Oom of string  (** device heap exhausted (RSBench, Fig. 11b) *)
  | Error of string

type measurement = { app : string; config : Config.t; outcome : outcome }

val run :
  ?machine:Gpusim.Machine.t ->
  ?scale:Proxyapps.App.scale ->
  Proxyapps.App.t ->
  Config.t ->
  measurement
(** Defaults: [Gpusim.Machine.bench_machine], [Proxyapps.App.Bench]. *)

val run_configs :
  ?machine:Gpusim.Machine.t ->
  ?scale:Proxyapps.App.scale ->
  Proxyapps.App.t ->
  Config.t list ->
  measurement list

val relative : baseline:measurement -> measurement -> float option
(** Performance relative to [baseline] (the paper normalizes to LLVM 12):
    greater than 1 means faster. *)

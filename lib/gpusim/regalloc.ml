(* Static per-thread register estimate for a kernel (the "# Regs" column of
   the paper's Figure 10).

   The estimate walks the call graph from the kernel; each function
   contributes its liveness-derived virtual-register pressure.  Indirect
   call sites force the toolchain to assume any address-taken function can
   be the callee and to spill around the call, which is why eliminating the
   function pointers of the worker state machine (Section IV-B.2) reduces
   register usage. *)

open Ir
module SS = Support.Util.String_set

let base_registers = 10
let indirect_call_penalty = 28
let call_overhead = 4
let max_registers = 255

(* The memo table lives for one [estimate] call and is allocated there, not
   at module level: a global table keyed by function name is invalid across
   modules that reuse names and is a data race when two domains simulate
   concurrently (the batch scheduler runs one simulation per worker). *)
let pressure pressure_cache (f : Func.t) =
  match Hashtbl.find_opt pressure_cache f.Func.name with
  | Some p -> p
  | None ->
    let p = Liveness.max_pressure f in
    Hashtbl.replace pressure_cache f.Func.name p;
    p

let estimate (m : Irmod.t) (kernel : Func.t) =
  let pressure_cache : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let pressure = pressure pressure_cache in
  let cg = Analysis.Callgraph.compute m in
  let reachable = Analysis.Callgraph.reachable_from cg [ kernel.Func.name ] in
  let has_indirect =
    SS.exists (fun n -> SS.mem n cg.Analysis.Callgraph.has_indirect_site) reachable
  in
  let defined name =
    match Irmod.find_func m name with
    | Some f when not (Func.is_declaration f) -> Some f
    | _ -> None
  in
  (* maximum pressure along any call chain approximated by kernel pressure
     plus the heaviest reachable callee plus per-level call overhead *)
  let kernel_p = pressure kernel in
  let callee_max =
    SS.fold
      (fun name acc ->
        if String.equal name kernel.Func.name then acc
        else
          match defined name with
          | Some f -> max acc (pressure f + call_overhead)
          | None -> acc)
      reachable 0
  in
  let total =
    base_registers + kernel_p + callee_max
    + (if has_indirect then indirect_call_penalty else 0)
  in
  min max_registers total

(* Exception → taxonomy mapping (see the .mli for why it lives here). *)

module E = Fault.Ompgpu_error

let backtrace_opt bt =
  match Printexc.raw_backtrace_to_string bt with "" -> None | s -> Some s

let classify ~phase e bt : E.t =
  let mk ?loc kind ~phase msg = E.make kind ~phase ?loc ?backtrace:(backtrace_opt bt) msg in
  match e with
  | E.Error t -> (
    match t.E.backtrace with
    | Some _ -> t
    | None -> { t with E.backtrace = backtrace_opt bt })
  | Frontend.Lexer.Lex_error (msg, loc) -> mk E.Lex ~phase:E.Lexing ~loc msg
  | Frontend.Cparse.Parse_error (msg, loc) -> mk E.Parse ~phase:E.Parsing ~loc msg
  | Frontend.Codegen.Error (msg, loc) -> mk E.Codegen ~phase:E.Lowering ~loc msg
  | Gpusim.Mem.Out_of_memory msg -> mk E.Oom ~phase:E.Simulating msg
  | Gpusim.Rvalue.Sim_error msg -> mk E.Sim_trap ~phase:E.Simulating msg
  | Stdlib.Out_of_memory -> mk E.Oom ~phase "host allocation exhausted"
  | e -> E.of_exn ~phase e bt

let run_protected ~phase f =
  match f () with
  | v -> Ok v
  | exception e -> Error (classify ~phase e (Printexc.get_raw_backtrace ()))

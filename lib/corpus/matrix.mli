(** The differential conformance matrix.

    Every corpus program is compiled and simulated — through the
    {!Ompgpu_api} facade, so the daemon path shares the exact bytes —
    under every cell of

    {v {Simplified, Legacy, Cuda} x {generic, SPMD} x {O0, full pipeline} v}

    and each cell's observable behavior (the host-traced final contents
    of the [A]/[B] arrays, i.e. final memory, plus the exit code; the
    ledger records its checksum) is compared against the in-mode
    reference cell [Simplified x mode x O0].  A differing cell is either
    a {e known divergence} — a documented unsoundness of the modeled
    compiler era, classified by {!classify} — or a conformance failure,
    which the runner shrinks to a minimal reproducer. *)

type pipeline = O0 | Full

val pipelines : pipeline list
val pipeline_name : pipeline -> string

val schemes : Ompgpu_api.Scheme.scheme list
(** [[Simplified; Legacy; Cuda]], the matrix order. *)

type cell = {
  scheme : Ompgpu_api.Scheme.scheme;
  mode : Gen.mode;
  pipeline : pipeline;
}

val cells : cell list
(** All 12 cells, mode-major then scheme then pipeline — ledger order. *)

val cell_name : cell -> string
(** ["legacy/spmd/full"] — the ledger's cell syntax. *)

val cell_of_name : string -> cell option

val config_of_cell :
  ?pipeline:Ompgpu_api.Pipeline.t -> cell -> Ompgpu_api.Config.t
(** The facade config a cell compiles under: the cell's scheme, the full
    default pipeline for [Full] (none for [O0]), simulation on, IR
    emission off.  Also what the daemon traffic generator sends.
    [?pipeline] (api_version 2) substitutes an explicit pipeline for the
    [Full] cells — [conformance --pipeline fast] replays the matrix with
    the fast tier in the optimized column; [O0] cells are unaffected. *)

val classify : cell -> Gen.prog -> string option
(** [Some class_id] when a divergence in this cell is a documented
    unsoundness of the modeled era (docs/CONFORMANCE.md):
    - ["legacy-spmd-escape"]: the legacy SPMD fast path skips
      globalization, so a Figure-3 escape reads thread-private storage;
    - ["cuda-escape"]: CUDA semantics have no globalization at all, so
      the same escape reads private storage in either mode.
    [None] means a divergence here is a bug. *)

(** One cell's outcome.  [Known]/[Fail] carry the observation checksums
    (reference first). *)
type verdict =
  | Pass
  | Known of { cls : string; obs : string; ref_ : string }
  | Fail of { obs : string; ref_ : string; detail : string }

type cell_result = { cell : cell; verdict : verdict }

type program_result = {
  index : int;  (** position in the corpus: seed = [program_stream ~root i] *)
  prog : Gen.prog;
  cells : cell_result list;  (** in {!cells} order *)
}

val observe :
  ?backend:
    (file:string -> config:Ompgpu_api.Config.t -> string -> Ompgpu_api.compiled) ->
  ?pipeline:Ompgpu_api.Pipeline.t ->
  cell ->
  Gen.prog ->
  string
(** The cell's observation string: ["exit:N|<trace line>"].  [backend]
    defaults to in-process {!Ompgpu_api.compile_buffered}; the traffic
    generator substitutes a daemon-backed one.  [?pipeline] is threaded
    to {!config_of_cell}. *)

val run_program :
  ?backend:
    (file:string -> config:Ompgpu_api.Config.t -> string -> Ompgpu_api.compiled) ->
  ?pipeline:Ompgpu_api.Pipeline.t ->
  index:int ->
  Gen.prog ->
  program_result

val run :
  ?backend:
    (file:string -> config:Ompgpu_api.Config.t -> string -> Ompgpu_api.compiled) ->
  ?pipeline:Ompgpu_api.Pipeline.t ->
  ?on_program:(program_result -> unit) ->
  root:int64 ->
  n:int ->
  unit ->
  program_result list
(** The corpus: programs [0 .. n-1] drawn from [root], each run through
    every cell; [?pipeline] replays the optimized column under an
    explicit pipeline (the divergence licenses in {!classify} are keyed
    on scheme/mode/program only, so they still apply).  [on_program]
    fires after each program (progress). *)

val shrink_failure :
  ?pipeline:Ompgpu_api.Pipeline.t -> cell -> Gen.prog -> Gen.prog
(** Greedily minimize a program that [Fail]s in [cell] (under the same
    pipeline override the failing run used), re-checking the cell at
    every candidate; returns the fixpoint. *)

val failures : program_result list -> (program_result * cell_result) list
(** Every unexplained divergence, in corpus order. *)

(** Textual form of MiniIR.  [Parser] accepts exactly this syntax; the
    round-trip property is checked by the test suite. *)

val pp_instr : Format.formatter -> Instr.t -> unit
val pp_term : Format.formatter -> Block.term -> unit
val pp_block : Format.formatter -> Block.t -> unit
val pp_func : Format.formatter -> Func.t -> unit
val pp_global : Format.formatter -> Irmod.global -> unit
val pp_module : Format.formatter -> Irmod.t -> unit

val func_to_string : Func.t -> string
val module_to_string : Irmod.t -> string
val instr_to_string : Instr.t -> string

(* Hand-written lexer for MiniOMP.  Pragmas are recognized as whole lines and
   delivered as a single [PRAGMA] token carrying the word list after
   "#pragma omp". *)

type token =
  | INT_LIT of int64
  | FLOAT_LIT of float
  | IDENT of string
  | KW of string  (* int, long, float, double, void, if, else, ... *)
  | PRAGMA of string list * Support.Loc.t  (* words after "#pragma omp" *)
  | PUNCT of string  (* operators and punctuation *)
  | EOF

type spanned = { tok : token; loc : Support.Loc.t }

exception Lex_error of string * Support.Loc.t

let keywords =
  [ "void"; "int"; "long"; "float"; "double"; "if"; "else"; "while"; "for";
    "return"; "break"; "continue"; "static"; "extern" ]

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

(* Longest-match table of multi-character punctuation. *)
let puncts2 =
  [ "=="; "!="; "<="; ">="; "&&"; "||"; "+="; "-="; "*="; "/="; "%="; "<<"; ">>"; "++"; "--" ]

let tokenize ~file src =
  let n = String.length src in
  let toks = ref [] in
  let pos = ref 0 in
  let line = ref 1 in
  let col = ref 1 in
  let loc () = Support.Loc.make ~file ~line:!line ~col:!col in
  let advance () =
    (if !pos < n then
       if src.[!pos] = '\n' then begin
         incr line;
         col := 1
       end
       else incr col);
    incr pos
  in
  let emit tok loc = toks := { tok; loc } :: !toks in
  let peek_at k = if !pos + k < n then Some src.[!pos + k] else None in
  let read_while pred =
    let buf = Buffer.create 16 in
    while !pos < n && pred src.[!pos] do
      Buffer.add_char buf src.[!pos];
      advance ()
    done;
    Buffer.contents buf
  in
  while !pos < n do
    let c = src.[!pos] in
    let start_loc = loc () in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '/' && peek_at 1 = Some '/' then
      while !pos < n && src.[!pos] <> '\n' do
        advance ()
      done
    else if c = '/' && peek_at 1 = Some '*' then begin
      advance ();
      advance ();
      let closed = ref false in
      while (not !closed) && !pos < n do
        if src.[!pos] = '*' && peek_at 1 = Some '/' then begin
          advance ();
          advance ();
          closed := true
        end
        else advance ()
      done;
      if not !closed then raise (Lex_error ("unterminated comment", start_loc))
    end
    else if c = '#' then begin
      (* pragma line *)
      let rest = read_while (fun c -> c <> '\n') in
      let words =
        String.split_on_char ' ' rest
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun w -> w <> "")
      in
      match words with
      | "#pragma" :: "omp" :: tail -> emit (PRAGMA (tail, start_loc)) start_loc
      | _ -> raise (Lex_error ("unsupported preprocessor line: " ^ rest, start_loc))
    end
    else if is_digit c || (c = '.' && (match peek_at 1 with Some d -> is_digit d | None -> false))
    then begin
      let text =
        read_while (fun c ->
            is_digit c || c = '.' || c = 'e' || c = 'E' || c = 'x'
            || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F'))
      in
      (* allow a trailing exponent sign: 1e-5 *)
      let text =
        if (!pos < n && (src.[!pos] = '+' || src.[!pos] = '-'))
           && (String.length text > 0
              && (text.[String.length text - 1] = 'e' || text.[String.length text - 1] = 'E'))
        then begin
          let sign = String.make 1 src.[!pos] in
          advance ();
          text ^ sign ^ read_while is_digit
        end
        else text
      in
      match Int64.of_string_opt text with
      | Some i -> emit (INT_LIT i) start_loc
      | None -> (
        match float_of_string_opt text with
        | Some f -> emit (FLOAT_LIT f) start_loc
        | None -> raise (Lex_error ("bad numeric literal " ^ text, start_loc)))
    end
    else if is_alpha c then begin
      let word = read_while is_alnum in
      if List.mem word keywords then emit (KW word) start_loc
      else emit (IDENT word) start_loc
    end
    else begin
      let two =
        if !pos + 1 < n then Some (String.sub src !pos 2) else None
      in
      match two with
      | Some p when List.mem p puncts2 ->
        advance ();
        advance ();
        emit (PUNCT p) start_loc
      | _ ->
        let p = String.make 1 c in
        if String.contains "+-*/%<>=!&|^~?:;,(){}[]" c then begin
          advance ();
          emit (PUNCT p) start_loc
        end
        else raise (Lex_error (Printf.sprintf "unexpected character %c" c, start_loc))
    end
  done;
  emit EOF (loc ());
  List.rev !toks

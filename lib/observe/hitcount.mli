(** Thread-safe per-key hit counters.

    A tiny frequency table over string keys (cache keys, request labels):
    each {!bump} increments one key's count under a mutex.  The compile
    daemon records one bump per tier-eligible request keyed by its
    {!Ompgpu_api.cache_key}, and the tier-upgrade queue drains hottest key
    first ({!count} ordering) so frequently requested entries get promoted
    to the full pipeline before one-off compiles (docs/SCHEDULER.md). *)

type t

val create : unit -> t

val bump : t -> string -> int
(** Increment [key]'s count; returns the new count (1 on first bump). *)

val count : t -> string -> int
(** Current count for [key]; 0 if never bumped. *)

val distinct : t -> int
(** Number of distinct keys ever bumped. *)

val total : t -> int
(** Sum of all counts. *)

val top : ?n:int -> t -> (string * int) list
(** The [n] (default 10) hottest keys, count descending, key ascending on
    ties (deterministic). *)

(** Basic blocks: a label, an instruction list, and a terminator. *)

type term =
  | Ret of Value.t option
  | Br of string
  | Cbr of Value.t * string * string
  | Switch of Value.t * (int64 * string) list * string  (** cases, default *)
  | Unreachable

type t = { label : string; mutable instrs : Instr.t list; mutable term : term }

val make : ?instrs:Instr.t list -> ?term:term -> string -> t
(** The default terminator is [Unreachable]. *)

val successors : t -> string list
(** Successor labels, deduplicated. *)

val term_operands : term -> Value.t list
val map_term_operands : (Value.t -> Value.t) -> t -> unit

val map_labels : (string -> string) -> t -> unit
(** Rewrite branch targets (block splitting / region deletion). *)

val append : t -> Instr.t -> unit

(** Structured observability for the optimization pipeline.

    A trace records one {!event} per executed pass per pipeline round:
    wall time, module-level IR statistics deltas, per-function deltas (the
    per-kernel attribution the paper's Figures 9–12 are built on), and the
    counter increments that otherwise only appear aggregated in the final
    [Pass_manager.report].  Events are ordered; an optional [on_event] hook
    fires synchronously after each recording (the test suite uses it to run
    the IR verifier after every pass and name the offending one). *)

(** Size statistics of a function or module. *)
type ir_stats = {
  funcs : int;  (** defined functions ([1] for a single function) *)
  blocks : int;
  instrs : int;
  calls : int;  (** call instructions, direct and indirect *)
  allocs : int;  (** [alloca]s plus allocating runtime calls *)
}

val ir_stats_zero : ir_stats
val ir_stats_add : ir_stats -> ir_stats -> ir_stats
val ir_stats_sub : ir_stats -> ir_stats -> ir_stats
val ir_stats_is_zero : ir_stats -> bool
val stats_of_func : Ir.Func.t -> ir_stats
val stats_of_module : Ir.Irmod.t -> ir_stats

type snapshot
(** Per-function statistics of a module at one instant. *)

val snapshot : Ir.Irmod.t -> snapshot

type event = {
  seq : int;  (** position in the trace, starting at 0 *)
  round : int;  (** pipeline round; 0 = before the round loop *)
  pass : string;
  time_s : float;  (** processor time spent in the pass *)
  delta : ir_stats;  (** module-level change (after minus before) *)
  per_func : (string * ir_stats) list;
      (** nonzero per-function deltas; a function created (resp. deleted)
          by the pass appears with its full positive (resp. negative)
          statistics *)
  counters : (string * int) list;  (** nonzero report-counter increments *)
}

type t

val create : ?on_event:(event -> unit) -> unit -> t
(** [on_event] runs synchronously after each {!record_pass}. *)

val record_pass :
  t ->
  round:int ->
  pass:string ->
  time_s:float ->
  before:snapshot ->
  after:snapshot ->
  counters:(string * int) list ->
  event
(** Diff the snapshots, append the event, fire [on_event], return it.
    [counters] entries with value 0 are dropped. *)

val events : t -> event list
(** In recording order. *)

val pp_event : Format.formatter -> event -> unit
(** One human-readable line: [r1 deglobalize 0.12ms Δinstrs=-4 {h2s=2}]. *)

(** JSON round-trip (schema in docs/OBSERVABILITY.md). *)

val event_to_json : event -> Json.t
val event_of_json : Json.t -> (event, string) result
val to_json : t -> Json.t
(** The events, oldest first, as a JSON list. *)

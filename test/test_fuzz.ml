(* Differential fuzzing: random small MiniOMP kernels must observe the
   same trace under every globalization scheme and optimization
   configuration.  Integer accumulators keep results exact, so scheduling
   differences cannot hide behind floating-point rounding.

   The program grammar lives in [Corpus.Gen] — the same seeded generator
   the mass-conformance corpus (tools/conformance.exe) runs at scale —
   so a fuzz counterexample is reproducible from a corpus seed and vice
   versa.  QCheck supplies the seed and the shrinking loop; the shrink
   candidates themselves come from [Corpus.Gen.shrink].

   Divergences the conformance ledger documents as *known* classes
   (docs/CONFORMANCE.md) — e.g. the legacy SPMD fast path reading
   thread-private storage through a Figure-3 escape — are skipped here
   via [Corpus.Matrix.classify], exactly as the matrix runner accounts
   them. *)

type tcase = { prog : Corpus.Gen.prog; mode : Corpus.Gen.mode }

let render c = Corpus.Gen.render ~mode:c.mode c.prog

let gen_case =
  QCheck.Gen.(
    map2
      (fun seed spmd ->
        {
          prog = Corpus.Gen.generate (Corpus.Splitmix.of_int seed);
          mode = (if spmd then Corpus.Gen.Spmd else Corpus.Gen.Generic);
        })
      (int_bound 0x3FFFFFFF) bool)

let shrink_case c yield =
  Corpus.Gen.shrink c.prog (fun prog -> yield { c with prog })

let arb_case = QCheck.make gen_case ~print:render ~shrink:shrink_case

(* ------------------------------------------------------------------ *)
(* The differential property                                           *)
(* ------------------------------------------------------------------ *)

let configurations =
  let open Openmpopt.Pass_manager in
  [
    (None : options option);
    Some default_options;
    Some { default_options with disable_spmdization = true };
    Some
      { default_options with disable_spmdization = true;
        disable_state_machine_rewrite = true };
    Some { default_options with disable_deglobalization = true };
    Some { default_options with disable_guard_grouping = true };
  ]

(* a scheme whose divergence in this cell the ledger documents as a known
   unsoundness of the modeled era is exempt from the property *)
let known_divergence scheme c =
  Corpus.Matrix.classify
    { Corpus.Matrix.scheme; mode = c.mode; pipeline = Corpus.Matrix.O0 }
    c.prog
  <> None

let prop_differential c =
  let src = render c in
  let reference = Helpers.run_trace src in
  List.for_all
    (fun scheme ->
      known_divergence scheme c
      || List.for_all
           (fun options ->
             let got =
               match options with
               | None -> Helpers.run_trace ~scheme src
               | Some options -> Helpers.run_trace ~scheme ~options src
             in
             if got <> reference then
               QCheck.Test.fail_reportf
                 "trace mismatch (scheme %s, mode %s, %s):@.got      %s@.expected \
                  %s@.program:@.%s"
                 (Frontend.Codegen.scheme_name scheme)
                 (Corpus.Gen.mode_name c.mode)
                 (match options with None -> "no-opt" | Some _ -> "optimized")
                 (String.concat " " got) (String.concat " " reference) src
             else true)
           configurations)
    [ Frontend.Codegen.Simplified; Frontend.Codegen.Legacy ]

(* running the pipeline on an already-optimized module finds nothing new *)
let prop_idempotent c =
  let src = render c in
  let m = Helpers.compile src in
  ignore (Openmpopt.Pass_manager.run m);
  let second = Openmpopt.Pass_manager.run m in
  let open Openmpopt.Pass_manager in
  if
    second.heap_to_stack <> 0 || second.heap_to_shared <> 0 || second.spmdized <> 0
    || second.custom_state_machines <> 0
  then
    QCheck.Test.fail_reportf
      "second pipeline run still transformed (h2s=%d h2shared=%d spmd=%d csm=%d):@.%s"
      second.heap_to_stack second.heap_to_shared second.spmdized
      second.custom_state_machines src
  else
    match Ir.Verify.check m with
    | Result.Ok () -> true
    | Result.Error msg ->
      QCheck.Test.fail_reportf "verifier rejected twice-optimized module: %s@.%s" msg
        src

(* ------------------------------------------------------------------ *)
(* Robustness: malformed input never escapes as a raw exception        *)
(* ------------------------------------------------------------------ *)

(* Truncate a valid program at an arbitrary byte, or splat one byte with
   punctuation the grammar rejects.  Whatever comes out, the front end must
   either compile it or fail with a *located* structured error — a raw
   [Failure]/[Invalid_argument]/assert escaping the lexer, parser or codegen
   classifies as [Internal] and fails the property. *)
let mangle (c, n, mutate) =
  let src = render c in
  let len = String.length src in
  if mutate then begin
    let b = Bytes.of_string src in
    Bytes.set b (n mod len) (List.nth [ '$'; '@'; '~'; '#'; '('; '}' ] (n mod 6));
    Bytes.to_string b
  end
  else String.sub src 0 (n mod len)

let arb_mangled =
  QCheck.make
    QCheck.Gen.(triple gen_case (int_bound 4096) bool)
    ~print:(fun arg -> mangle arg)

let prop_malformed_is_structured arg =
  let src = mangle arg in
  let open Fault.Ompgpu_error in
  match
    Harness.Errors.run_protected ~phase:Lowering (fun () ->
        let m =
          Frontend.Codegen.compile ~scheme:Frontend.Codegen.Simplified
            ~file:"mangled.c" src
        in
        match Ir.Verify.check m with
        | Result.Ok () -> ()
        | Result.Error msg -> raise_error Verify ~phase:Verifying "%s" msg)
  with
  | Result.Ok () -> true
  | Result.Error e -> (
    match e.kind with
    | Verify -> true
    | Lex | Parse | Codegen ->
      if e.loc = None then
        QCheck.Test.fail_reportf "compile error lost its location: %s@.%s"
          (to_string e) src
      else true
    | k ->
      QCheck.Test.fail_reportf
        "raw exception escaped the front end (classified %s): %s@.%s"
        (kind_name k) (to_string e) src)

(* CI exit-path canary: FUZZ_FORCE_FAIL=1 injects a property that always
   fails, so the shrinker reduces a counterexample and the run must exit
   nonzero.  tools/check_fuzz_exit.sh asserts that this exit code survives
   the `dune exec ... -- test fuzz` invocation `make ci` uses; a gate whose
   failing fuzz run exits 0 is not a gate. *)
let forced_fail =
  Helpers.qtest ~count:5 "forced failure (FUZZ_FORCE_FAIL canary)" arb_case
    (fun c ->
      ignore (render c);
      QCheck.Test.fail_reportf "FUZZ_FORCE_FAIL canary: intentional failure")

let suite =
  let base =
    [
      Helpers.qtest ~count:40 "random kernels: all schemes and configs agree" arb_case
        prop_differential;
      Helpers.qtest ~count:30 "optimizer pipeline is idempotent" arb_case
        prop_idempotent;
      Helpers.qtest ~count:150 "malformed source yields located structured errors"
        arb_mangled prop_malformed_is_structured;
    ]
  in
  if Sys.getenv_opt "FUZZ_FORCE_FAIL" = Some "1" then base @ [ forced_fail ]
  else base

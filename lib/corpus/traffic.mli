(** The corpus as a serving workload.

    Drives every matrix cell of a corpus through a live [mompd] server —
    booted in-process on a private Unix socket — over [connections]
    resilient client sessions ({!Service.Client.session}), twice: a cold
    pass against empty caches and a warm pass against the daemon's
    in-memory result cache.  Throughput (compiles/sec) is the
    first-class metric (DiOMP treats distributed offload compilation as
    a serving problem); byte-identity of every daemon answer against
    in-process {!Ompgpu_api.compile_buffered} is the correctness bar. *)

type stats = {
  programs : int;
  jobs : int;  (** programs x matrix cells *)
  connections : int;
  domains : int;  (** server pool domains *)
  cold_s : float;
  warm_s : float;
  cold_cps : float;  (** compiles/sec, cold caches *)
  warm_cps : float;  (** compiles/sec, warm in-memory cache *)
  byte_identical : bool;
      (** every cold and warm daemon answer matched the in-process bytes *)
  transport_errors : int;
      (** sessions that exhausted their retry budget (0 on a healthy run) *)
}

val run :
  ?connections:int -> ?domains:int -> root:int64 -> n:int -> unit -> stats
(** Defaults: 4 connections, 2 server domains.  Blocks until the server
    has drained and stopped; never raises on daemon-side failures (they
    surface as [transport_errors] / [byte_identical = false]). *)

val to_json : stats -> Observe.Json.t
(** The schema-stamped ["corpus"] section of [BENCH_observe.json]. *)

(** {1 The corpus through the fleet router} *)

type fleet_stats = {
  base : stats;  (** same measurements, taken through the router *)
  shards : int;
  failovers : int;  (** requests the router moved off a failed shard *)
  fallbacks : int;  (** requests the router settled in-process *)
  warm_hit_ratio : float;
      (** warm-pass answers served from a shard's in-memory cache — the
          consistent-hash ring keeping each key on its warm shard is the
          whole point of sharding, so this should approach 1.0 on a
          healthy fleet *)
}

val run_fleet :
  ?connections:int ->
  ?shards:int ->
  ?domains:int ->
  root:int64 ->
  n:int ->
  unit ->
  fleet_stats
(** {!run}, but through a {!Service.Router} fronting [shards] in-process
    supervised daemon shards (default 2) that share one on-disk cache
    tier.  Byte-identity is judged against the same in-process facade —
    a reply through the fleet must match a lone daemon's bytes, which
    must match [mompc]'s. *)

val fleet_to_json : fleet_stats -> Observe.Json.t
(** One entry of the fleet section's ["scaling"] list in
    [BENCH_observe.json] (the section itself is assembled and
    schema-stamped by [bench/main.exe]). *)

(** {1 Failover latency under a mid-traffic shard kill} *)

type failover_stats = {
  shards_total : int;
  fo_jobs : int;
  killed : string;  (** name of the shard stopped mid-pass *)
  p50_ms : float;
  p99_ms : float;  (** the headline: request latency with a shard dying *)
  max_ms : float;
  fo_byte_identical : bool;
      (** every answer — including those that failed over — matched the
          in-process bytes, with zero client-visible transport errors *)
  fo_failovers : int;  (** requests the router moved off the dead shard *)
  fo_fallbacks : int;  (** requests the router settled in-process *)
  respawns : int;  (** monitor respawns observed (>= 1 on a healthy run) *)
}

val run_failover :
  ?connections:int ->
  ?shards:int ->
  ?domains:int ->
  root:int64 ->
  n:int ->
  unit ->
  failover_stats
(** Warm a fleet (default 3 in-process shards) with one cold pass, then
    stop one shard ~50ms into a second, per-request-timed pass.  The
    router must absorb the kill — strike the shard, fail over along the
    ring, respawn it — without a single client-visible failure; the
    latency percentiles price that absorption. *)

val failover_to_json : failover_stats -> Observe.Json.t
(** The ["failover"] member of the fleet section of [BENCH_observe.json]. *)

(** {1 Tiered compilation: cold latency per tier, upgrade throughput} *)

type tier_stats = {
  tr_jobs : int;  (** tier-eligible jobs (the matrix's Full cells only) *)
  tr_connections : int;
  tr_domains : int;
  full_cold_p50_ms : float;
      (** cold per-request p50 against an untiered daemon (full tier) *)
  tiered_cold_p50_ms : float;
      (** cold per-request p50 against a tiered daemon (fast-tier
          answers) — the headline: tiering must drop this *)
  full_warm_cps : float;
  tiered_warm_cps : float;  (** warm throughput must not regress *)
  upgrades_done : int;
  upgrade_drain_s : float;
      (** how long after the cold pass the upgrade queue took to settle *)
  upgrades_per_s : float;  (** background full-pipeline promotion rate *)
  post_upgrade_identical : bool;
      (** every post-drain answer was byte-identical to a one-shot
          full-pipeline compile — the tentpole's acceptance criterion *)
  tr_transport_errors : int;
}

val run_tiered :
  ?connections:int -> ?domains:int -> root:int64 -> n:int -> unit -> tier_stats
(** Drive the tier-eligible corpus slice through two in-process daemons —
    one untiered, one [tiered] — cold then warm, and wait for the tiered
    daemon's upgrade queue to drain before judging byte-identity of the
    warm pass against one-shot full-pipeline compiles. *)

val tiers_to_json : tier_stats -> Observe.Json.t
(** The schema-stamped ["tiers"] section of [BENCH_observe.json]
    (required by [bench_gate] in compare mode). *)
